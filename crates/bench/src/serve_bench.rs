//! `pulp_cli bench serve` — serving-layer load benchmark.
//!
//! Boots the production-shaped prediction server in-process on an
//! ephemeral port, then drives it with K concurrent keep-alive clients
//! split over three request mixes:
//!
//! * `kernel` — `POST /predict` with `{"kernel": …}` bodies (features
//!   computed server-side; the expensive single-request path),
//! * `features` — `POST /predict` with raw 20-dim `{"features": […]}`
//!   vectors (the cheap wire path),
//! * `batch` — `POST /predict/batch` with [`ServeBenchOptions::batch_size`]
//!   items per request (amortised admission + parsing).
//!
//! Every response is checked (HTTP 200, parseable JSON, 1..=8 cores), one
//! batch request is verified bit-identical against sequential `/predict`
//! calls, and the run finishes by exercising the graceful-shutdown path
//! (`POST /admin/shutdown`, then joining [`Server::run`]). The load runs
//! in [`ServeBenchOptions::rounds`] rounds and reports the median across
//! rounds of each round's percentiles — stable enough for a 20% CI gate
//! where a single round's p99 is not. The report carries throughput,
//! per-mix p50/p90/p99 latency and the server's own
//! shed/timeout/keep-alive counters; `BENCH_serve.json` feeds
//! `pulp_cli bench diff`, which gates CI on p99 regressions and on any
//! shedding in the quick profile.
//!
//! The model is always the quick-trained one: the predictor costs
//! microseconds either way, and this benchmark measures the serving layer
//! (admission control, parsing, keep-alive) rather than the tree.

use crate::serve::{ServeOptions, ServeState, Server};
use crate::QUICK_KERNELS;
use pulp_energy::pipeline::PipelineOptions;
use pulp_energy::static_feature_vector;
use pulp_obs::validate_chrome_trace;
use serde::{Deserialize, Serialize, Value};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant;

/// The three request mixes, in report order.
pub const MIXES: [&str; 3] = ["kernel", "features", "batch"];

/// Options of one load-benchmark invocation.
#[derive(Debug, Clone, Copy)]
pub struct ServeBenchOptions {
    /// Shrunken profile for CI smoke runs (`--quick`).
    pub quick: bool,
    /// Concurrent client threads (split round-robin over [`MIXES`]).
    pub clients: usize,
    /// Requests each client issues per round.
    pub requests_per_client: usize,
    /// Measurement rounds. Reported percentiles are the **median across
    /// rounds** of each round's percentile: a single round's p99 at
    /// microsecond latencies is dominated by scheduler noise (±30%
    /// run-to-run), the median of five rounds is stable enough for a 20%
    /// CI gate.
    pub rounds: usize,
    /// Items per `/predict/batch` request in the batch mix.
    pub batch_size: usize,
    /// Capacity knobs of the server under test.
    pub serve: ServeOptions,
}

impl Default for ServeBenchOptions {
    fn default() -> Self {
        Self {
            quick: false,
            clients: 12,
            requests_per_client: 250,
            rounds: 5,
            batch_size: 16,
            serve: ServeOptions::default(),
        }
    }
}

impl ServeBenchOptions {
    /// The reduced smoke configuration: one client per mix, low enough
    /// concurrency that a correctly sized queue never sheds (so CI can
    /// require zero shed and zero timeouts) and that single-core CI
    /// runners are not oversubscribed into pure scheduler noise.
    pub fn quick() -> Self {
        Self {
            quick: true,
            clients: 3,
            requests_per_client: 200,
            batch_size: 8,
            ..Self::default()
        }
    }
}

/// Latency digest of one request mix. Percentiles are the median across
/// measurement rounds of each round's percentile (see
/// [`ServeBenchOptions::rounds`]); `max_us` is the worst latency over all
/// rounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeBenchMixRow {
    /// Mix identifier (see [`MIXES`]).
    pub mix: String,
    /// Requests issued in this mix across all rounds.
    pub requests: u64,
    /// Responses that were not HTTP 200 with a well-formed body.
    pub errors: u64,
    /// Median request latency, microseconds.
    pub p50_us: f64,
    /// 90th-percentile request latency, microseconds.
    pub p90_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
    /// Worst observed request latency, microseconds.
    pub max_us: f64,
}

/// The full benchmark record written to `BENCH_serve.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeBenchReport {
    /// Tool identifier for downstream diffing (`"serve"`).
    pub bench: String,
    /// `true` for `--quick` runs (not comparable to full runs).
    pub quick: bool,
    /// Concurrent clients that drove the run.
    pub clients: usize,
    /// Measurement rounds behind the median-of-rounds percentiles.
    pub rounds: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Server connection-queue depth.
    pub queue_depth: usize,
    /// Total requests issued across all mixes.
    pub total_requests: u64,
    /// Wall time of the load phase, seconds.
    pub wall_s: f64,
    /// `total_requests / wall_s`.
    pub throughput_rps: f64,
    /// Responses that failed the correctness checks.
    pub errors: u64,
    /// Server-side `pulp_serve_shed_total` after the run.
    pub shed_total: f64,
    /// Server-side `pulp_serve_timeouts_total` (all kinds) after the run.
    pub timeouts_total: f64,
    /// Server-side `pulp_serve_keepalive_reuse_total` after the run.
    pub keepalive_reuse_total: f64,
    /// `true` when one `/predict/batch` probe matched sequential
    /// `/predict` calls item-for-item.
    pub batch_matches_sequential: bool,
    /// One latency digest per mix.
    pub rows: Vec<ServeBenchMixRow>,
}

/// Result of one benchmark invocation: the JSON-committable report plus
/// the flight-recorder capture, which is written as a separate artifact
/// (`--trace-out`) rather than into `BENCH_serve.json`.
#[derive(Debug, Clone)]
pub struct ServeBenchRun {
    /// The record destined for `BENCH_serve.json`.
    pub report: ServeBenchReport,
    /// Chrome-trace JSON from `GET /debug/requests`, captured right before
    /// shutdown — the tail of the load, one lane per request.
    pub trace_json: String,
}

impl ServeBenchRun {
    /// [`ServeBenchReport::verify`] plus the flight-recorder checks: the
    /// captured trace must pass [`validate_chrome_trace`] and actually
    /// contain the per-request child spans the server promises.
    ///
    /// # Errors
    ///
    /// Returns one message per violated invariant.
    pub fn verify(&self) -> Result<(), Vec<String>> {
        let mut problems = match self.report.verify() {
            Ok(()) => Vec::new(),
            Err(p) => p,
        };
        if let Err(e) = validate_chrome_trace(&self.trace_json) {
            problems.push(format!("/debug/requests trace is malformed: {e}"));
        }
        for span in ["queue_wait", "predict", "write"] {
            if !self.trace_json.contains(&format!("\"{span}\"")) {
                problems.push(format!(
                    "/debug/requests trace is missing `{span}` spans after a full load run"
                ));
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

/// `q`-quantile (0..=1) of an already-sorted latency sample, microseconds.
fn percentile_us(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64
}

/// Median of an unsorted sample (lower-median for even counts, matching
/// [`percentile_us`]'s ceil-rank convention).
fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_unstable_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    values[values.len().div_ceil(2) - 1]
}

/// Per-round, per-mix digest: `(mix, [p50, p90, p99, max], ok, errors)`.
type RoundStats = Vec<(String, [f64; 4], u64, u64)>;

/// One keep-alive client connection to the server under test.
struct BenchClient {
    reader: BufReader<TcpStream>,
    addr: SocketAddr,
}

impl BenchClient {
    fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            reader: BufReader::new(stream),
            addr,
        })
    }

    /// Issues one request, reconnecting transparently when the server
    /// closed the connection (keep-alive cap); returns `(status, body)`.
    fn request(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        match self.try_request(method, path, body) {
            Ok(out) => Ok(out),
            Err(_) => {
                *self = Self::connect(self.addr)?;
                self.try_request(method, path, body)
            }
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<(u16, String)> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        read_response(&mut self.reader)
    }
}

/// Reads one HTTP/1.1 response off a keep-alive connection.
fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<(u16, String)> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection",
        ));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "unparseable status line")
        })?;
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "headers truncated",
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

/// The rotating request bodies of one mix.
fn mix_bodies(mix: &str, batch_size: usize) -> Vec<String> {
    let kernel_bodies: Vec<String> = QUICK_KERNELS
        .iter()
        .map(|k| format!("{{\"kernel\": \"{k}\", \"dtype\": \"i32\", \"size\": 2048}}"))
        .collect();
    match mix {
        "kernel" => kernel_bodies,
        "features" => {
            // Real feature vectors (from the registry) so the tree sees
            // realistic split paths, serialised once up front.
            QUICK_KERNELS
                .iter()
                .filter_map(|k| {
                    let def = pulp_kernels::registry()
                        .into_iter()
                        .find(|d| d.name == *k)?;
                    let kernel = def
                        .build(&pulp_kernels::KernelParams::new(
                            kernel_ir::DType::I32,
                            2048,
                        ))
                        .ok()?;
                    let features = static_feature_vector(&kernel)
                        .iter()
                        .map(f64::to_string)
                        .collect::<Vec<_>>()
                        .join(",");
                    Some(format!("{{\"features\": [{features}]}}"))
                })
                .collect()
        }
        "batch" => {
            let items: Vec<String> = (0..batch_size)
                .map(|i| kernel_bodies[i % kernel_bodies.len()].clone())
                .collect();
            vec![format!("{{\"requests\": [{}]}}", items.join(","))]
        }
        other => panic!("unknown mix `{other}`"),
    }
}

/// Checks one 200-response body for the mix's expected shape.
fn response_ok(mix: &str, status: u16, body: &str) -> bool {
    if status != 200 {
        return false;
    }
    let Ok(v) = serde_json::from_str::<Value>(body) else {
        return false;
    };
    let cores_ok = |r: &Value| {
        r.field("cores")
            .and_then(Value::as_u64)
            .is_ok_and(|c| (1..=8).contains(&c))
    };
    if mix == "batch" {
        v.field("results")
            .and_then(Value::as_seq)
            .is_ok_and(|rs| !rs.is_empty() && rs.iter().all(cores_ok))
    } else {
        cores_ok(&v)
    }
}

/// Verifies one `/predict/batch` probe against sequential `/predict`
/// calls, item for item.
fn batch_matches_sequential(addr: SocketAddr, batch_size: usize) -> bool {
    let Ok(mut client) = BenchClient::connect(addr) else {
        return false;
    };
    let items: Vec<String> = (0..batch_size)
        .map(|i| {
            let k = QUICK_KERNELS[i % QUICK_KERNELS.len()];
            format!("{{\"kernel\": \"{k}\", \"dtype\": \"i32\", \"size\": 2048}}")
        })
        .collect();
    let batch_body = format!("{{\"requests\": [{}]}}", items.join(","));
    let Ok((200, body)) = client.request("POST", "/predict/batch", &batch_body) else {
        return false;
    };
    let Ok(v) = serde_json::from_str::<Value>(&body) else {
        return false;
    };
    let Ok(results) = v.field("results").and_then(Value::as_seq) else {
        return false;
    };
    let batch: Vec<Option<u64>> = results
        .iter()
        .map(|r| r.field("cores").and_then(Value::as_u64).ok())
        .collect();
    let sequential: Vec<Option<u64>> = items
        .iter()
        .map(|item| {
            let (status, body) = client.request("POST", "/predict", item).ok()?;
            if status != 200 {
                return None;
            }
            serde_json::from_str::<Value>(&body)
                .ok()?
                .field("cores")
                .and_then(Value::as_u64)
                .ok()
        })
        .collect();
    !batch.is_empty() && batch.iter().all(Option::is_some) && batch == sequential
}

/// Runs the load benchmark: trains the quick model, boots the server,
/// drives it with the configured client fleet, snapshots the flight
/// recorder, then shuts the server down gracefully and returns the run.
///
/// # Panics
///
/// Panics when the model cannot be trained or the server cannot bind —
/// there is nothing to measure without either.
pub fn run_serve_bench(opts: &ServeBenchOptions) -> ServeBenchRun {
    let pipeline = PipelineOptions::quick(QUICK_KERNELS);
    let state = Arc::new(ServeState::train(&pipeline));
    let server = Server::bind_with("127.0.0.1:0", Arc::clone(&state), opts.serve)
        .expect("bench: bind ephemeral port");
    let addr = server.addr;
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::Builder::new()
        .name("serve-bench-server".to_string())
        .spawn(move || server.run())
        .expect("bench: spawn server");

    // Warm-up: one request per mix so first-connection costs (kernel
    // registry, lazy allocations) stay out of the measured window.
    for mix in MIXES {
        if let Ok(mut c) = BenchClient::connect(addr) {
            let bodies = mix_bodies(mix, opts.batch_size);
            let path = if mix == "batch" {
                "/predict/batch"
            } else {
                "/predict"
            };
            let _ = c.request("POST", path, &bodies[0]);
        }
    }

    // Each round re-runs the full client fleet; per-mix percentiles are
    // computed per round and the rounds' medians are reported, so one
    // scheduler hiccup cannot move the record's p99.
    let clients = opts.clients.max(1);
    let rounds = opts.rounds.max(1);
    let mut round_stats: Vec<RoundStats> = Vec::with_capacity(rounds);
    let load_start = Instant::now();
    for _ in 0..rounds {
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                let mix = MIXES[i % MIXES.len()].to_string();
                let bodies = mix_bodies(&mix, opts.batch_size);
                let n = opts.requests_per_client.max(1);
                std::thread::Builder::new()
                    .name(format!("serve-bench-client-{i}"))
                    .spawn(move || {
                        let path = if mix == "batch" {
                            "/predict/batch"
                        } else {
                            "/predict"
                        };
                        let mut latencies = Vec::with_capacity(n);
                        let mut errors = 0u64;
                        let mut client = match BenchClient::connect(addr) {
                            Ok(c) => c,
                            Err(_) => return (mix, latencies, n as u64),
                        };
                        for r in 0..n {
                            let body = &bodies[r % bodies.len()];
                            let start = Instant::now();
                            match client.request("POST", path, body) {
                                Ok((status, text)) if response_ok(&mix, status, &text) => {
                                    latencies.push(start.elapsed().as_micros() as u64);
                                }
                                _ => errors += 1,
                            }
                        }
                        (mix, latencies, errors)
                    })
                    .expect("bench: spawn client")
            })
            .collect();

        let mut per_mix: Vec<(String, Vec<u64>, u64)> = MIXES
            .iter()
            .map(|m| ((*m).to_string(), Vec::new(), 0u64))
            .collect();
        for h in handles {
            let (mix, latencies, errors) = h.join().expect("bench: client thread panicked");
            let slot = per_mix
                .iter_mut()
                .find(|(m, _, _)| *m == mix)
                .expect("known mix");
            slot.1.extend(latencies);
            slot.2 += errors;
        }
        round_stats.push(
            per_mix
                .into_iter()
                .map(|(mix, mut latencies, errors)| {
                    latencies.sort_unstable();
                    let stats = [
                        percentile_us(&latencies, 0.50),
                        percentile_us(&latencies, 0.90),
                        percentile_us(&latencies, 0.99),
                        latencies.last().copied().unwrap_or(0) as f64,
                    ];
                    (mix, stats, latencies.len() as u64, errors)
                })
                .collect(),
        );
    }
    let wall_s = load_start.elapsed().as_secs_f64();

    let batch_ok = batch_matches_sequential(addr, opts.batch_size);

    // Snapshot the flight recorder while the server is still up: the tail
    // of the load as Chrome-trace JSON, one lane per request.
    let trace_json = BenchClient::connect(addr)
        .and_then(|mut c| c.request("GET", "/debug/requests?n=256", ""))
        .map(|(status, body)| if status == 200 { body } else { String::new() })
        .unwrap_or_default();

    // Exercise the graceful-shutdown path on every benchmark run, then
    // read the server's own counters before the state goes away.
    if let Ok(mut c) = BenchClient::connect(addr) {
        let _ = c.request("POST", "/admin/shutdown", "");
    } else {
        shutdown.trigger();
    }
    server_thread.join().expect("bench: server joins");

    let counter =
        |name: &str, labels: &[(&str, &str)]| state.metric_value(name, labels).unwrap_or(0.0);
    let shed_total = counter("pulp_serve_shed_total", &[]);
    let timeouts_total = counter("pulp_serve_timeouts_total", &[("kind", "read")])
        + counter("pulp_serve_timeouts_total", &[("kind", "write")]);
    let keepalive_reuse_total = counter("pulp_serve_keepalive_reuse_total", &[]);

    let mut rows = Vec::new();
    let mut total_requests = 0u64;
    let mut errors = 0u64;
    for mix in MIXES {
        let mut per_stat: [Vec<f64>; 4] = Default::default();
        let (mut requests, mut mix_errors) = (0u64, 0u64);
        for round in &round_stats {
            let (_, stats, ok, errs) = round
                .iter()
                .find(|(m, _, _, _)| m == mix)
                .expect("known mix");
            for (dst, s) in per_stat.iter_mut().zip(stats) {
                dst.push(*s);
            }
            requests += ok + errs;
            mix_errors += errs;
        }
        total_requests += requests;
        errors += mix_errors;
        let [mut p50s, mut p90s, mut p99s, maxes] = per_stat;
        rows.push(ServeBenchMixRow {
            mix: mix.to_string(),
            requests,
            errors: mix_errors,
            p50_us: median(&mut p50s),
            p90_us: median(&mut p90s),
            p99_us: median(&mut p99s),
            max_us: maxes.iter().copied().fold(0.0, f64::max),
        });
    }

    ServeBenchRun {
        report: ServeBenchReport {
            bench: "serve".to_string(),
            quick: opts.quick,
            clients,
            rounds,
            workers: opts.serve.workers,
            queue_depth: opts.serve.queue_depth,
            total_requests,
            wall_s,
            throughput_rps: total_requests as f64 / wall_s.max(f64::MIN_POSITIVE),
            errors,
            shed_total,
            timeouts_total,
            keepalive_reuse_total,
            batch_matches_sequential: batch_ok,
            rows,
        },
        trace_json,
    }
}

impl ServeBenchReport {
    /// Renders the human-readable table.
    pub fn render_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "serve bench: {} clients vs {} workers (queue {}), {:.0} req/s over {:.2}s, \
             median of {} rounds",
            self.clients,
            self.workers,
            self.queue_depth,
            self.throughput_rps,
            self.wall_s,
            self.rounds
        );
        let _ = writeln!(
            out,
            "{:<10} {:>9} {:>7} {:>10} {:>10} {:>10} {:>10}",
            "mix", "requests", "errors", "p50 [us]", "p90 [us]", "p99 [us]", "max [us]"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<10} {:>9} {:>7} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
                r.mix, r.requests, r.errors, r.p50_us, r.p90_us, r.p99_us, r.max_us
            );
        }
        let _ = writeln!(
            out,
            "shed {} · timeouts {} · keep-alive reuses {} · batch≡sequential: {}",
            self.shed_total,
            self.timeouts_total,
            self.keepalive_reuse_total,
            if self.batch_matches_sequential {
                "ok"
            } else {
                "FAIL"
            }
        );
        out
    }

    /// Checks the invariants every benchmark run must uphold — and, in the
    /// quick profile, the zero-shed/zero-timeout requirement CI gates on
    /// (the quick fleet is sized to fit the queue; shedding there means
    /// admission control regressed).
    ///
    /// # Errors
    ///
    /// Returns one message per violated invariant.
    pub fn verify(&self) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        if self.errors > 0 {
            problems.push(format!(
                "{} request(s) failed the correctness checks",
                self.errors
            ));
        }
        if !self.batch_matches_sequential {
            problems.push("batch /predict/batch diverged from sequential /predict".to_string());
        }
        if self.quick && self.shed_total > 0.0 {
            problems.push(format!(
                "quick profile shed {} connection(s); its fleet must fit the queue",
                self.shed_total
            ));
        }
        if self.quick && self.timeouts_total > 0.0 {
            problems.push(format!(
                "quick profile hit {} read/write timeout(s)",
                self.timeouts_total
            ));
        }
        if self.rows.iter().map(|r| r.requests).sum::<u64>() != self.total_requests {
            problems.push("per-mix request counts do not add up".to_string());
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_the_expected_ranks() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&sorted, 0.50), 50.0);
        assert_eq!(percentile_us(&sorted, 0.90), 90.0);
        assert_eq!(percentile_us(&sorted, 0.99), 99.0);
        assert_eq!(percentile_us(&sorted, 1.0), 100.0);
        assert_eq!(percentile_us(&[], 0.5), 0.0);
        assert_eq!(percentile_us(&[7], 0.99), 7.0);
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        assert_eq!(median(&mut [400.0, 9000.0, 380.0, 390.0, 410.0]), 400.0);
        assert_eq!(median(&mut [2.0, 1.0]), 1.0);
        assert_eq!(median(&mut [5.0]), 5.0);
        assert_eq!(median(&mut []), 0.0);
    }

    #[test]
    fn every_mix_builds_non_empty_bodies() {
        for mix in MIXES {
            let bodies = mix_bodies(mix, 4);
            assert!(!bodies.is_empty(), "mix {mix} has no bodies");
            for b in &bodies {
                let v: Value = serde_json::from_str(b).expect("mix body is JSON");
                assert!(v.as_map().is_ok());
            }
        }
    }

    #[test]
    fn response_ok_rejects_bad_shapes() {
        assert!(!response_ok("kernel", 503, "{}"));
        assert!(!response_ok("kernel", 200, "not json"));
        assert!(!response_ok("kernel", 200, r#"{"cores": 0}"#));
        assert!(response_ok("kernel", 200, r#"{"cores": 4}"#));
        assert!(!response_ok("batch", 200, r#"{"results": []}"#));
        assert!(response_ok(
            "batch",
            200,
            r#"{"results": [{"cores": 1}, {"cores": 8}]}"#
        ));
    }

    fn healthy_report() -> ServeBenchReport {
        ServeBenchReport {
            bench: "serve".to_string(),
            quick: true,
            clients: 3,
            rounds: 2,
            workers: 2,
            queue_depth: 8,
            total_requests: 30,
            wall_s: 0.5,
            throughput_rps: 60.0,
            errors: 0,
            shed_total: 0.0,
            timeouts_total: 0.0,
            keepalive_reuse_total: 27.0,
            batch_matches_sequential: true,
            rows: MIXES
                .iter()
                .map(|m| ServeBenchMixRow {
                    mix: (*m).to_string(),
                    requests: 10,
                    errors: 0,
                    p50_us: 100.0,
                    p90_us: 200.0,
                    p99_us: 300.0,
                    max_us: 400.0,
                })
                .collect(),
        }
    }

    #[test]
    fn report_round_trips_through_json_and_verifies() {
        let report = healthy_report();
        report.verify().expect("healthy report verifies");
        let json = serde_json::to_string_pretty(&report).expect("serialise");
        let back: ServeBenchReport = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, report);

        // A shedding quick run fails verification.
        let mut shedding = report.clone();
        shedding.shed_total = 2.0;
        let problems = shedding.verify().expect_err("shed must fail quick verify");
        assert!(problems.iter().any(|p| p.contains("shed")), "{problems:?}");
        // A full-profile run may shed without failing.
        shedding.quick = false;
        shedding.verify().expect("full profile tolerates shed");
    }

    #[test]
    fn run_verification_gates_on_the_captured_trace() {
        use pulp_obs::recorder::Recorder;
        use pulp_obs::{FlightRecorder, RequestTrace, TraceContext};

        let flight = FlightRecorder::new(4);
        let mut rec = Recorder::manual().with_trace(TraceContext::root(7));
        let root = rec.start("request");
        let mut t = 0;
        for name in ["queue_wait", "predict", "write"] {
            let span = rec.start(name);
            t += 5;
            rec.set_time(t);
            rec.end(span);
        }
        rec.end(root);
        flight.record(RequestTrace::from_recorder("/predict", 200, &rec));

        let run = ServeBenchRun {
            report: healthy_report(),
            trace_json: flight.chrome_recent(4, "pulp-serve"),
        };
        run.verify()
            .expect("healthy run with a real trace verifies");

        let bad = ServeBenchRun {
            report: healthy_report(),
            trace_json: "{}".to_string(),
        };
        let problems = bad.verify().expect_err("a malformed trace must fail");
        assert!(
            problems.iter().any(|p| p.contains("malformed")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("queue_wait")),
            "{problems:?}"
        );
    }
}

//! `pulp_cli bench serve` — serving-layer load benchmark.
//!
//! Boots the production-shaped prediction server in-process on an
//! ephemeral port, then drives it with K concurrent keep-alive clients
//! split over three request mixes:
//!
//! * `kernel` — `POST /predict` with `{"kernel": …}` bodies (features
//!   computed server-side; the expensive single-request path),
//! * `features` — `POST /predict` with raw 20-dim `{"features": […]}`
//!   vectors (the cheap wire path),
//! * `batch` — `POST /predict/batch` with [`ServeBenchOptions::batch_size`]
//!   items per request (amortised admission + parsing).
//!
//! Every response is checked (HTTP 200, parseable JSON, 1..=8 cores), one
//! batch request is verified bit-identical against sequential `/predict`
//! calls, and the run finishes by exercising the graceful-shutdown path
//! (`POST /admin/shutdown`, then joining [`Server::run`]). The load runs
//! in [`ServeBenchOptions::rounds`] rounds and reports the median across
//! rounds of each round's percentiles — stable enough for a 20% CI gate
//! where a single round's p99 is not. The report carries throughput,
//! per-mix p50/p90/p99 latency and the server's own
//! shed/timeout/keep-alive counters; `BENCH_serve.json` feeds
//! `pulp_cli bench diff`, which gates CI on p99 regressions and on any
//! shedding in the quick profile.
//!
//! The model is always the quick-trained one: the predictor costs
//! microseconds either way, and this benchmark measures the serving layer
//! (admission control, parsing, keep-alive) rather than the tree.

use crate::serve::{PredictorBackend, ServeOptions, ServeState, Server};
use crate::QUICK_KERNELS;
use pulp_energy::pipeline::PipelineOptions;
use pulp_energy::static_feature_vector;
use pulp_obs::validate_chrome_trace;
use serde::{Deserialize, Serialize, Value};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant;

/// The three request mixes, in report order.
pub const MIXES: [&str; 3] = ["kernel", "features", "batch"];

/// Options of one load-benchmark invocation.
#[derive(Debug, Clone, Copy)]
pub struct ServeBenchOptions {
    /// Shrunken profile for CI smoke runs (`--quick`).
    pub quick: bool,
    /// Concurrent client threads (split round-robin over [`MIXES`]).
    pub clients: usize,
    /// Requests each client issues per round.
    pub requests_per_client: usize,
    /// Measurement rounds. Reported percentiles are the **median across
    /// rounds** of each round's percentile: a single round's p99 at
    /// microsecond latencies is dominated by scheduler noise (±30%
    /// run-to-run), the median of five rounds is stable enough for a 20%
    /// CI gate.
    pub rounds: usize,
    /// Items per `/predict/batch` request in the batch mix.
    pub batch_size: usize,
    /// Open-loop target arrival rate, requests per second (`--rate`).
    /// Arrivals are Poisson: exponential gaps around `1/rate`, issued on
    /// schedule whether or not earlier responses came back.
    pub open_loop_rate_rps: f64,
    /// Open-loop measurement window, seconds.
    pub open_loop_duration_s: f64,
    /// Keep-alive connections the open-loop generator spreads its
    /// arrival process over.
    pub open_loop_connections: usize,
    /// Which compiled form of the model the server walks (`--predictor`).
    /// Flat is the production default; `float` measures the boxed
    /// reference tree so the flat path can be gated against it.
    pub backend: PredictorBackend,
    /// Capacity knobs of the server under test.
    pub serve: ServeOptions,
}

impl Default for ServeBenchOptions {
    fn default() -> Self {
        Self {
            quick: false,
            clients: 12,
            requests_per_client: 250,
            rounds: 5,
            batch_size: 16,
            open_loop_rate_rps: 2_000.0,
            open_loop_duration_s: 4.0,
            open_loop_connections: 8,
            backend: PredictorBackend::default(),
            serve: ServeOptions::default(),
        }
    }
}

impl ServeBenchOptions {
    /// The reduced smoke configuration: one client per mix, low enough
    /// concurrency that a correctly sized queue never sheds (so CI can
    /// require zero shed and zero timeouts) and that single-core CI
    /// runners are not oversubscribed into pure scheduler noise.
    pub fn quick() -> Self {
        Self {
            quick: true,
            clients: 3,
            requests_per_client: 200,
            batch_size: 8,
            open_loop_rate_rps: 300.0,
            open_loop_duration_s: 1.5,
            open_loop_connections: 4,
            ..Self::default()
        }
    }
}

/// Latency digest of one request mix. Percentiles are the median across
/// measurement rounds of each round's percentile (see
/// [`ServeBenchOptions::rounds`]); `max_us` is the worst latency over all
/// rounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeBenchMixRow {
    /// Mix identifier (see [`MIXES`]).
    pub mix: String,
    /// Requests issued in this mix across all rounds.
    pub requests: u64,
    /// Responses that were not HTTP 200 with a well-formed body.
    pub errors: u64,
    /// Median request latency, microseconds.
    pub p50_us: f64,
    /// 90th-percentile request latency, microseconds.
    pub p90_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
    /// Worst observed request latency, microseconds.
    pub max_us: f64,
}

/// Open-loop (constant-arrival-rate) results: the tail-latency view that
/// closed-loop clients cannot give. Closed-loop clients wait for each
/// response before sending again, so a slow server slows its own load down
/// and the measured percentiles silently omit the requests that *would*
/// have arrived meanwhile — coordinated omission. Here arrivals follow a
/// Poisson schedule fixed up front, and every latency is stamped from the
/// request's **intended** send time, so server stalls surface as real
/// tail latency instead of vanishing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenLoopReport {
    /// Arrival rate the generator aimed for, requests/second.
    pub target_rps: f64,
    /// Requests actually issued per second of wall time.
    pub achieved_rps: f64,
    /// Measurement window, seconds.
    pub duration_s: f64,
    /// Keep-alive connections the arrival process was spread over.
    pub connections: usize,
    /// Requests issued.
    pub requests: u64,
    /// Responses failing the correctness checks (non-200, bad body).
    pub errors: u64,
    /// Arrivals whose send left more than one mean gap late because the
    /// connection was still busy with an earlier exchange — the generator
    /// fell behind schedule (latencies still count from intended time).
    pub late_sends: u64,
    /// Latency percentiles from intended-send to response-complete, µs.
    pub p50_us: f64,
    /// 90th percentile, µs.
    pub p90_us: f64,
    /// 99th percentile, µs.
    pub p99_us: f64,
    /// 99.9th percentile, µs.
    pub p999_us: f64,
    /// Worst observed, µs.
    pub max_us: f64,
}

/// The full benchmark record written to `BENCH_serve.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeBenchReport {
    /// Tool identifier for downstream diffing (`"serve"`).
    pub bench: String,
    /// `true` for `--quick` runs (not comparable to full runs).
    pub quick: bool,
    /// Predictor backend the server walked (`"flat"` or `"float"`).
    /// Records written before the backend knob existed deserialise with
    /// this empty; [`predictor_name`](Self::predictor_name) maps that to
    /// `"float"` (what those runs actually measured), which is exactly
    /// what lets `bench diff` gate a new flat record against a committed
    /// float-era baseline.
    #[serde(default)]
    pub predictor: String,
    /// Concurrent clients that drove the run.
    pub clients: usize,
    /// Measurement rounds behind the median-of-rounds percentiles.
    pub rounds: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Server connection-queue depth.
    pub queue_depth: usize,
    /// Total requests issued across all mixes.
    pub total_requests: u64,
    /// Wall time of the load phase, seconds.
    pub wall_s: f64,
    /// `total_requests / wall_s`.
    pub throughput_rps: f64,
    /// Responses that failed the correctness checks.
    pub errors: u64,
    /// Server-side `pulp_serve_shed_total` after the run.
    pub shed_total: f64,
    /// Server-side `pulp_serve_timeouts_total` (all kinds) after the run.
    pub timeouts_total: f64,
    /// Server-side `pulp_serve_keepalive_reuse_total` after the run.
    pub keepalive_reuse_total: f64,
    /// `true` when one `/predict/batch` probe matched sequential
    /// `/predict` calls item-for-item.
    pub batch_matches_sequential: bool,
    /// One latency digest per mix.
    pub rows: Vec<ServeBenchMixRow>,
    /// Open-loop (Poisson-arrival, coordinated-omission-safe) results.
    /// `None` in records written before the open-loop mode existed — the
    /// diff gate only engages when both records carry it.
    #[serde(default)]
    pub open_loop: Option<OpenLoopReport>,
}

/// Result of one benchmark invocation: the JSON-committable report plus
/// the flight-recorder capture, which is written as a separate artifact
/// (`--trace-out`) rather than into `BENCH_serve.json`.
#[derive(Debug, Clone)]
pub struct ServeBenchRun {
    /// The record destined for `BENCH_serve.json`.
    pub report: ServeBenchReport,
    /// Chrome-trace JSON from `GET /debug/requests`, captured right before
    /// shutdown — the tail of the load, one lane per request.
    pub trace_json: String,
    /// Sorted raw open-loop latencies (µs, intended-send to complete):
    /// the full distribution behind [`OpenLoopReport`]'s percentiles,
    /// exported as a histogram artifact via `--hist-out`.
    pub open_loop_latencies_us: Vec<u64>,
}

impl ServeBenchRun {
    /// [`ServeBenchReport::verify`] plus the flight-recorder checks: the
    /// captured trace must pass [`validate_chrome_trace`] and actually
    /// contain the per-request child spans the server promises.
    ///
    /// # Errors
    ///
    /// Returns one message per violated invariant.
    pub fn verify(&self) -> Result<(), Vec<String>> {
        let mut problems = match self.report.verify() {
            Ok(()) => Vec::new(),
            Err(p) => p,
        };
        if let Err(e) = validate_chrome_trace(&self.trace_json) {
            problems.push(format!("/debug/requests trace is malformed: {e}"));
        }
        for span in ["queue_wait", "predict", "write"] {
            if !self.trace_json.contains(&format!("\"{span}\"")) {
                problems.push(format!(
                    "/debug/requests trace is missing `{span}` spans after a full load run"
                ));
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }

    /// Renders the open-loop latency distribution as a JSON histogram
    /// artifact: power-of-two bucket upper bounds in µs with per-bucket
    /// counts, so CI can archive the full tail shape, not just the
    /// percentiles in the report.
    pub fn open_loop_histogram_json(&self) -> String {
        use std::fmt::Write;
        let latencies = &self.open_loop_latencies_us;
        let mut buckets: Vec<(u64, u64)> = Vec::new();
        let mut le = 1u64;
        let mut i = 0usize;
        while i < latencies.len() {
            let count = latencies[i..].iter().take_while(|&&v| v <= le).count();
            if count > 0 || !buckets.is_empty() {
                buckets.push((le, count as u64));
            }
            i += count;
            le = le.saturating_mul(2);
        }
        let mut out = String::from("{\n  \"unit\": \"us\",\n");
        let _ = writeln!(out, "  \"total\": {},", latencies.len());
        out.push_str("  \"buckets\": [\n");
        for (j, (le, count)) in buckets.iter().enumerate() {
            let comma = if j + 1 == buckets.len() { "" } else { "," };
            let _ = writeln!(out, "    {{\"le\": {le}, \"count\": {count}}}{comma}");
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// `q`-quantile (0..=1) of an already-sorted latency sample, microseconds.
fn percentile_us(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64
}

/// Median of an unsorted sample (lower-median for even counts, matching
/// [`percentile_us`]'s ceil-rank convention).
fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_unstable_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    values[values.len().div_ceil(2) - 1]
}

/// Per-round, per-mix digest: `(mix, [p50, p90, p99, max], ok, errors)`.
type RoundStats = Vec<(String, [f64; 4], u64, u64)>;

/// SplitMix64 step — a tiny deterministic PRNG so Poisson schedules are
/// reproducible run to run (no `rand` dependency).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One exponentially distributed inter-arrival gap (µs) around `mean_us`,
/// via inverse-CDF sampling: `-ln(U) * mean`.
fn exp_gap_us(state: &mut u64, mean_us: f64) -> u64 {
    // 53 uniform mantissa bits in [0, 1); flip to (0, 1] so ln() is finite.
    let u = 1.0 - (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64;
    (-u.ln() * mean_us).round() as u64
}

/// What one open-loop generator thread (and, merged, the whole fleet)
/// brought back.
struct OpenLoopOutcome {
    latencies_us: Vec<u64>,
    requests: u64,
    errors: u64,
    late_sends: u64,
}

/// Drives the server open-loop: a Poisson arrival schedule at
/// `rate_rps`, split evenly over `connections` keep-alive connections,
/// for `duration_s`. Every request's latency is measured from its
/// **intended** arrival time — not from when the connection got around to
/// sending it — so a stalled server cannot hide queueing delay
/// (coordinated omission).
fn run_open_loop(
    addr: SocketAddr,
    rate_rps: f64,
    duration_s: f64,
    connections: usize,
    bodies: Arc<Vec<String>>,
) -> OpenLoopOutcome {
    let connections = connections.max(1);
    let mean_gap_us = 1e6 * connections as f64 / rate_rps.max(1e-6);
    let window_us = (duration_s.max(0.01) * 1e6) as u64;
    let handles: Vec<_> = (0..connections)
        .map(|i| {
            let bodies = Arc::clone(&bodies);
            std::thread::Builder::new()
                .name(format!("serve-openloop-{i}"))
                .spawn(move || {
                    // Deterministic per-thread seed: schedules replay
                    // exactly across runs of the same shape.
                    let mut rng = 0x0DDB_1A5E_5BAD_5EED_u64 ^ ((i as u64) << 17);
                    let mut outcome = OpenLoopOutcome {
                        latencies_us: Vec::new(),
                        requests: 0,
                        errors: 0,
                        late_sends: 0,
                    };
                    let mut client = match BenchClient::connect(addr) {
                        Ok(c) => c,
                        Err(_) => {
                            outcome.errors += 1;
                            return outcome;
                        }
                    };
                    let start = Instant::now();
                    let mut intended_us = exp_gap_us(&mut rng, mean_gap_us);
                    while intended_us < window_us {
                        let now_us = start.elapsed().as_micros() as u64;
                        if now_us < intended_us {
                            std::thread::sleep(std::time::Duration::from_micros(
                                intended_us - now_us,
                            ));
                        } else if now_us > intended_us + mean_gap_us as u64 {
                            // The previous exchange held the connection past
                            // this arrival's slot; the send is late but the
                            // latency below still counts from `intended_us`.
                            outcome.late_sends += 1;
                        }
                        let body = &bodies[outcome.requests as usize % bodies.len()];
                        outcome.requests += 1;
                        match client.request("POST", "/predict", body) {
                            Ok((status, text)) if response_ok("features", status, &text) => {
                                let done_us = start.elapsed().as_micros() as u64;
                                outcome
                                    .latencies_us
                                    .push(done_us.saturating_sub(intended_us));
                            }
                            _ => outcome.errors += 1,
                        }
                        intended_us += exp_gap_us(&mut rng, mean_gap_us);
                    }
                    outcome
                })
                .expect("bench: spawn open-loop client")
        })
        .collect();
    let mut merged = OpenLoopOutcome {
        latencies_us: Vec::new(),
        requests: 0,
        errors: 0,
        late_sends: 0,
    };
    for h in handles {
        let one = h.join().expect("bench: open-loop thread panicked");
        merged.latencies_us.extend(one.latencies_us);
        merged.requests += one.requests;
        merged.errors += one.errors;
        merged.late_sends += one.late_sends;
    }
    merged
}

/// One keep-alive client connection to the server under test.
struct BenchClient {
    reader: BufReader<TcpStream>,
    addr: SocketAddr,
}

impl BenchClient {
    fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            reader: BufReader::new(stream),
            addr,
        })
    }

    /// Issues one request, reconnecting transparently when the server
    /// closed the connection (keep-alive cap); returns `(status, body)`.
    fn request(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        match self.try_request(method, path, body) {
            Ok(out) => Ok(out),
            Err(_) => {
                *self = Self::connect(self.addr)?;
                self.try_request(method, path, body)
            }
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<(u16, String)> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        read_response(&mut self.reader)
    }
}

/// Reads one HTTP/1.1 response off a keep-alive connection.
fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<(u16, String)> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection",
        ));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "unparseable status line")
        })?;
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "headers truncated",
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

/// The rotating request bodies of one mix.
fn mix_bodies(mix: &str, batch_size: usize) -> Vec<String> {
    let kernel_bodies: Vec<String> = QUICK_KERNELS
        .iter()
        .map(|k| format!("{{\"kernel\": \"{k}\", \"dtype\": \"i32\", \"size\": 2048}}"))
        .collect();
    match mix {
        "kernel" => kernel_bodies,
        "features" => {
            // Real feature vectors (from the registry) so the tree sees
            // realistic split paths, serialised once up front.
            QUICK_KERNELS
                .iter()
                .filter_map(|k| {
                    let def = pulp_kernels::registry()
                        .into_iter()
                        .find(|d| d.name == *k)?;
                    let kernel = def
                        .build(&pulp_kernels::KernelParams::new(
                            kernel_ir::DType::I32,
                            2048,
                        ))
                        .ok()?;
                    let features = static_feature_vector(&kernel)
                        .iter()
                        .map(f64::to_string)
                        .collect::<Vec<_>>()
                        .join(",");
                    Some(format!("{{\"features\": [{features}]}}"))
                })
                .collect()
        }
        "batch" => {
            let items: Vec<String> = (0..batch_size)
                .map(|i| kernel_bodies[i % kernel_bodies.len()].clone())
                .collect();
            vec![format!("{{\"requests\": [{}]}}", items.join(","))]
        }
        other => panic!("unknown mix `{other}`"),
    }
}

/// Checks one 200-response body for the mix's expected shape.
fn response_ok(mix: &str, status: u16, body: &str) -> bool {
    if status != 200 {
        return false;
    }
    let Ok(v) = serde_json::from_str::<Value>(body) else {
        return false;
    };
    let cores_ok = |r: &Value| {
        r.field("cores")
            .and_then(Value::as_u64)
            .is_ok_and(|c| (1..=8).contains(&c))
    };
    if mix == "batch" {
        v.field("results")
            .and_then(Value::as_seq)
            .is_ok_and(|rs| !rs.is_empty() && rs.iter().all(cores_ok))
    } else {
        cores_ok(&v)
    }
}

/// Verifies one `/predict/batch` probe against sequential `/predict`
/// calls, item for item.
fn batch_matches_sequential(addr: SocketAddr, batch_size: usize) -> bool {
    let Ok(mut client) = BenchClient::connect(addr) else {
        return false;
    };
    let items: Vec<String> = (0..batch_size)
        .map(|i| {
            let k = QUICK_KERNELS[i % QUICK_KERNELS.len()];
            format!("{{\"kernel\": \"{k}\", \"dtype\": \"i32\", \"size\": 2048}}")
        })
        .collect();
    let batch_body = format!("{{\"requests\": [{}]}}", items.join(","));
    let Ok((200, body)) = client.request("POST", "/predict/batch", &batch_body) else {
        return false;
    };
    let Ok(v) = serde_json::from_str::<Value>(&body) else {
        return false;
    };
    let Ok(results) = v.field("results").and_then(Value::as_seq) else {
        return false;
    };
    let batch: Vec<Option<u64>> = results
        .iter()
        .map(|r| r.field("cores").and_then(Value::as_u64).ok())
        .collect();
    let sequential: Vec<Option<u64>> = items
        .iter()
        .map(|item| {
            let (status, body) = client.request("POST", "/predict", item).ok()?;
            if status != 200 {
                return None;
            }
            serde_json::from_str::<Value>(&body)
                .ok()?
                .field("cores")
                .and_then(Value::as_u64)
                .ok()
        })
        .collect();
    !batch.is_empty() && batch.iter().all(Option::is_some) && batch == sequential
}

/// Runs the load benchmark: trains the quick model, boots the server,
/// drives it with the configured client fleet, snapshots the flight
/// recorder, then shuts the server down gracefully and returns the run.
///
/// # Panics
///
/// Panics when the model cannot be trained or the server cannot bind —
/// there is nothing to measure without either.
pub fn run_serve_bench(opts: &ServeBenchOptions) -> ServeBenchRun {
    let pipeline = PipelineOptions::quick(QUICK_KERNELS);
    let state = Arc::new(ServeState::train(&pipeline).with_backend(opts.backend));
    let server = Server::bind_with("127.0.0.1:0", Arc::clone(&state), opts.serve)
        .expect("bench: bind ephemeral port");
    let addr = server.addr;
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::Builder::new()
        .name("serve-bench-server".to_string())
        .spawn(move || server.run())
        .expect("bench: spawn server");

    // Warm-up: one request per mix so first-connection costs (kernel
    // registry, lazy allocations) stay out of the measured window.
    for mix in MIXES {
        if let Ok(mut c) = BenchClient::connect(addr) {
            let bodies = mix_bodies(mix, opts.batch_size);
            let path = if mix == "batch" {
                "/predict/batch"
            } else {
                "/predict"
            };
            let _ = c.request("POST", path, &bodies[0]);
        }
    }

    // Each round re-runs the full client fleet; per-mix percentiles are
    // computed per round and the rounds' medians are reported, so one
    // scheduler hiccup cannot move the record's p99.
    let clients = opts.clients.max(1);
    let rounds = opts.rounds.max(1);
    let mut round_stats: Vec<RoundStats> = Vec::with_capacity(rounds);
    let load_start = Instant::now();
    for _ in 0..rounds {
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                let mix = MIXES[i % MIXES.len()].to_string();
                let bodies = mix_bodies(&mix, opts.batch_size);
                let n = opts.requests_per_client.max(1);
                std::thread::Builder::new()
                    .name(format!("serve-bench-client-{i}"))
                    .spawn(move || {
                        let path = if mix == "batch" {
                            "/predict/batch"
                        } else {
                            "/predict"
                        };
                        let mut latencies = Vec::with_capacity(n);
                        let mut errors = 0u64;
                        let mut client = match BenchClient::connect(addr) {
                            Ok(c) => c,
                            Err(_) => return (mix, latencies, n as u64),
                        };
                        for r in 0..n {
                            let body = &bodies[r % bodies.len()];
                            let start = Instant::now();
                            match client.request("POST", path, body) {
                                Ok((status, text)) if response_ok(&mix, status, &text) => {
                                    latencies.push(start.elapsed().as_micros() as u64);
                                }
                                _ => errors += 1,
                            }
                        }
                        (mix, latencies, errors)
                    })
                    .expect("bench: spawn client")
            })
            .collect();

        let mut per_mix: Vec<(String, Vec<u64>, u64)> = MIXES
            .iter()
            .map(|m| ((*m).to_string(), Vec::new(), 0u64))
            .collect();
        for h in handles {
            let (mix, latencies, errors) = h.join().expect("bench: client thread panicked");
            let slot = per_mix
                .iter_mut()
                .find(|(m, _, _)| *m == mix)
                .expect("known mix");
            slot.1.extend(latencies);
            slot.2 += errors;
        }
        round_stats.push(
            per_mix
                .into_iter()
                .map(|(mix, mut latencies, errors)| {
                    latencies.sort_unstable();
                    let stats = [
                        percentile_us(&latencies, 0.50),
                        percentile_us(&latencies, 0.90),
                        percentile_us(&latencies, 0.99),
                        latencies.last().copied().unwrap_or(0) as f64,
                    ];
                    (mix, stats, latencies.len() as u64, errors)
                })
                .collect(),
        );
    }
    let wall_s = load_start.elapsed().as_secs_f64();

    // Open-loop phase: fixed Poisson arrival schedule over the cheap wire
    // path, latencies stamped from intended send times (CO-safe).
    let open_bodies = Arc::new(mix_bodies("features", opts.batch_size));
    let open_start = Instant::now();
    let mut open = run_open_loop(
        addr,
        opts.open_loop_rate_rps,
        opts.open_loop_duration_s,
        opts.open_loop_connections,
        open_bodies,
    );
    let open_wall_s = open_start.elapsed().as_secs_f64();
    open.latencies_us.sort_unstable();
    let open_report = OpenLoopReport {
        target_rps: opts.open_loop_rate_rps,
        achieved_rps: open.requests as f64 / open_wall_s.max(f64::MIN_POSITIVE),
        duration_s: opts.open_loop_duration_s,
        connections: opts.open_loop_connections.max(1),
        requests: open.requests,
        errors: open.errors,
        late_sends: open.late_sends,
        p50_us: percentile_us(&open.latencies_us, 0.50),
        p90_us: percentile_us(&open.latencies_us, 0.90),
        p99_us: percentile_us(&open.latencies_us, 0.99),
        p999_us: percentile_us(&open.latencies_us, 0.999),
        max_us: open.latencies_us.last().copied().unwrap_or(0) as f64,
    };

    let batch_ok = batch_matches_sequential(addr, opts.batch_size);

    // Snapshot the flight recorder while the server is still up: the tail
    // of the load as Chrome-trace JSON, one lane per request.
    let trace_json = BenchClient::connect(addr)
        .and_then(|mut c| c.request("GET", "/debug/requests?n=256", ""))
        .map(|(status, body)| if status == 200 { body } else { String::new() })
        .unwrap_or_default();

    // Exercise the graceful-shutdown path on every benchmark run, then
    // read the server's own counters before the state goes away.
    if let Ok(mut c) = BenchClient::connect(addr) {
        let _ = c.request("POST", "/admin/shutdown", "");
    } else {
        shutdown.trigger();
    }
    server_thread.join().expect("bench: server joins");

    let counter =
        |name: &str, labels: &[(&str, &str)]| state.metric_value(name, labels).unwrap_or(0.0);
    let shed_total = counter("pulp_serve_shed_total", &[]);
    let timeouts_total = counter("pulp_serve_timeouts_total", &[("kind", "read")])
        + counter("pulp_serve_timeouts_total", &[("kind", "write")]);
    let keepalive_reuse_total = counter("pulp_serve_keepalive_reuse_total", &[]);

    let mut rows = Vec::new();
    let mut total_requests = 0u64;
    let mut errors = 0u64;
    for mix in MIXES {
        let mut per_stat: [Vec<f64>; 4] = Default::default();
        let (mut requests, mut mix_errors) = (0u64, 0u64);
        for round in &round_stats {
            let (_, stats, ok, errs) = round
                .iter()
                .find(|(m, _, _, _)| m == mix)
                .expect("known mix");
            for (dst, s) in per_stat.iter_mut().zip(stats) {
                dst.push(*s);
            }
            requests += ok + errs;
            mix_errors += errs;
        }
        total_requests += requests;
        errors += mix_errors;
        let [mut p50s, mut p90s, mut p99s, maxes] = per_stat;
        rows.push(ServeBenchMixRow {
            mix: mix.to_string(),
            requests,
            errors: mix_errors,
            p50_us: median(&mut p50s),
            p90_us: median(&mut p90s),
            p99_us: median(&mut p99s),
            max_us: maxes.iter().copied().fold(0.0, f64::max),
        });
    }

    ServeBenchRun {
        report: ServeBenchReport {
            bench: "serve".to_string(),
            quick: opts.quick,
            predictor: opts.backend.name().to_string(),
            clients,
            rounds,
            workers: opts.serve.workers,
            queue_depth: opts.serve.queue_depth,
            total_requests,
            wall_s,
            throughput_rps: total_requests as f64 / wall_s.max(f64::MIN_POSITIVE),
            errors,
            shed_total,
            timeouts_total,
            keepalive_reuse_total,
            batch_matches_sequential: batch_ok,
            rows,
            open_loop: Some(open_report),
        },
        trace_json,
        open_loop_latencies_us: open.latencies_us,
    }
}

impl ServeBenchReport {
    /// The backend this record measured, with the pre-knob empty field
    /// normalised to `"float"` (see [`predictor`](Self::predictor)).
    pub fn predictor_name(&self) -> &str {
        if self.predictor.is_empty() {
            PredictorBackend::Float.name()
        } else {
            &self.predictor
        }
    }

    /// Renders the human-readable table.
    pub fn render_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "serve bench [{} predictor]: {} clients vs {} workers (queue {}), {:.0} req/s \
             over {:.2}s, median of {} rounds",
            self.predictor_name(),
            self.clients,
            self.workers,
            self.queue_depth,
            self.throughput_rps,
            self.wall_s,
            self.rounds
        );
        let _ = writeln!(
            out,
            "{:<10} {:>9} {:>7} {:>10} {:>10} {:>10} {:>10}",
            "mix", "requests", "errors", "p50 [us]", "p90 [us]", "p99 [us]", "max [us]"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<10} {:>9} {:>7} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
                r.mix, r.requests, r.errors, r.p50_us, r.p90_us, r.p99_us, r.max_us
            );
        }
        let _ = writeln!(
            out,
            "shed {} · timeouts {} · keep-alive reuses {} · batch≡sequential: {}",
            self.shed_total,
            self.timeouts_total,
            self.keepalive_reuse_total,
            if self.batch_matches_sequential {
                "ok"
            } else {
                "FAIL"
            }
        );
        if let Some(o) = &self.open_loop {
            let _ = writeln!(
                out,
                "open-loop: target {:.0} rps → achieved {:.0} rps over {:.1}s on {} conns \
                 (CO-safe) · p50 {:.0}us p90 {:.0}us p99 {:.0}us p99.9 {:.0}us max {:.0}us \
                 · {} errors · {} late sends",
                o.target_rps,
                o.achieved_rps,
                o.duration_s,
                o.connections,
                o.p50_us,
                o.p90_us,
                o.p99_us,
                o.p999_us,
                o.max_us,
                o.errors,
                o.late_sends
            );
        }
        out
    }

    /// Checks the invariants every benchmark run must uphold — and, in the
    /// quick profile, the zero-shed/zero-timeout requirement CI gates on
    /// (the quick fleet is sized to fit the queue; shedding there means
    /// admission control regressed).
    ///
    /// # Errors
    ///
    /// Returns one message per violated invariant.
    pub fn verify(&self) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        if self.errors > 0 {
            problems.push(format!(
                "{} request(s) failed the correctness checks",
                self.errors
            ));
        }
        if !self.batch_matches_sequential {
            problems.push("batch /predict/batch diverged from sequential /predict".to_string());
        }
        if self.quick && self.shed_total > 0.0 {
            problems.push(format!(
                "quick profile shed {} connection(s); its fleet must fit the queue",
                self.shed_total
            ));
        }
        if self.quick && self.timeouts_total > 0.0 {
            problems.push(format!(
                "quick profile hit {} read/write timeout(s)",
                self.timeouts_total
            ));
        }
        if self.rows.iter().map(|r| r.requests).sum::<u64>() != self.total_requests {
            problems.push("per-mix request counts do not add up".to_string());
        }
        if let Some(o) = &self.open_loop {
            if self.quick && o.errors > 0 {
                problems.push(format!(
                    "open-loop quick profile had {} failed response(s)",
                    o.errors
                ));
            }
            if o.requests > 0 && o.achieved_rps < o.target_rps * 0.25 {
                problems.push(format!(
                    "open-loop generator only achieved {:.0} of {:.0} target rps — \
                     the schedule collapsed instead of measuring the server",
                    o.achieved_rps, o.target_rps
                ));
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_the_expected_ranks() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&sorted, 0.50), 50.0);
        assert_eq!(percentile_us(&sorted, 0.90), 90.0);
        assert_eq!(percentile_us(&sorted, 0.99), 99.0);
        assert_eq!(percentile_us(&sorted, 1.0), 100.0);
        assert_eq!(percentile_us(&[], 0.5), 0.0);
        assert_eq!(percentile_us(&[7], 0.99), 7.0);
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        assert_eq!(median(&mut [400.0, 9000.0, 380.0, 390.0, 410.0]), 400.0);
        assert_eq!(median(&mut [2.0, 1.0]), 1.0);
        assert_eq!(median(&mut [5.0]), 5.0);
        assert_eq!(median(&mut []), 0.0);
    }

    #[test]
    fn every_mix_builds_non_empty_bodies() {
        for mix in MIXES {
            let bodies = mix_bodies(mix, 4);
            assert!(!bodies.is_empty(), "mix {mix} has no bodies");
            for b in &bodies {
                let v: Value = serde_json::from_str(b).expect("mix body is JSON");
                assert!(v.as_map().is_ok());
            }
        }
    }

    #[test]
    fn response_ok_rejects_bad_shapes() {
        assert!(!response_ok("kernel", 503, "{}"));
        assert!(!response_ok("kernel", 200, "not json"));
        assert!(!response_ok("kernel", 200, r#"{"cores": 0}"#));
        assert!(response_ok("kernel", 200, r#"{"cores": 4}"#));
        assert!(!response_ok("batch", 200, r#"{"results": []}"#));
        assert!(response_ok(
            "batch",
            200,
            r#"{"results": [{"cores": 1}, {"cores": 8}]}"#
        ));
    }

    fn healthy_report() -> ServeBenchReport {
        ServeBenchReport {
            bench: "serve".to_string(),
            quick: true,
            predictor: "flat".to_string(),
            clients: 3,
            rounds: 2,
            workers: 2,
            queue_depth: 8,
            total_requests: 30,
            wall_s: 0.5,
            throughput_rps: 60.0,
            errors: 0,
            shed_total: 0.0,
            timeouts_total: 0.0,
            keepalive_reuse_total: 27.0,
            batch_matches_sequential: true,
            rows: MIXES
                .iter()
                .map(|m| ServeBenchMixRow {
                    mix: (*m).to_string(),
                    requests: 10,
                    errors: 0,
                    p50_us: 100.0,
                    p90_us: 200.0,
                    p99_us: 300.0,
                    max_us: 400.0,
                })
                .collect(),
            open_loop: Some(OpenLoopReport {
                target_rps: 300.0,
                achieved_rps: 295.0,
                duration_s: 1.5,
                connections: 4,
                requests: 440,
                errors: 0,
                late_sends: 2,
                p50_us: 150.0,
                p90_us: 400.0,
                p99_us: 900.0,
                p999_us: 1500.0,
                max_us: 2100.0,
            }),
        }
    }

    #[test]
    fn poisson_gaps_are_deterministic_with_the_right_mean() {
        let mut a = 42u64;
        let mut b = 42u64;
        let gaps_a: Vec<u64> = (0..1000).map(|_| exp_gap_us(&mut a, 500.0)).collect();
        let gaps_b: Vec<u64> = (0..1000).map(|_| exp_gap_us(&mut b, 500.0)).collect();
        assert_eq!(gaps_a, gaps_b, "same seed, same schedule");
        let mean = gaps_a.iter().sum::<u64>() as f64 / gaps_a.len() as f64;
        assert!(
            (mean - 500.0).abs() < 100.0,
            "exponential gaps should average near the mean, got {mean}"
        );
    }

    #[test]
    fn open_loop_histogram_renders_valid_json_buckets() {
        let run = ServeBenchRun {
            report: healthy_report(),
            trace_json: String::new(),
            open_loop_latencies_us: vec![1, 3, 3, 7, 120, 4000],
        };
        let hist = run.open_loop_histogram_json();
        let v: Value = serde_json::from_str(&hist).expect("histogram is JSON");
        assert_eq!(v.field("unit").and_then(Value::as_str), Ok("us"));
        assert_eq!(v.field("total").and_then(Value::as_u64), Ok(6));
        let buckets = v
            .field("buckets")
            .and_then(Value::as_seq)
            .expect("buckets array");
        let total: u64 = buckets
            .iter()
            .map(|b| b.field("count").and_then(Value::as_u64).unwrap_or(0))
            .sum();
        assert_eq!(total, 6, "bucket counts cover every sample");
    }

    #[test]
    fn reports_without_an_open_loop_section_still_deserialize() {
        // A baseline written before open-loop mode and the predictor knob
        // existed.
        let mut old = healthy_report();
        old.open_loop = None;
        let mut json = serde_json::to_string_pretty(&old).expect("serialise");
        // Strip the fields entirely to mimic the old schema.
        json = json
            .lines()
            .filter(|l| !l.contains("open_loop") && !l.contains("predictor"))
            .collect::<Vec<_>>()
            .join("\n");
        // Drop a dangling comma if the filtered field was last.
        let json = json.replace(",\n}", "\n}");
        let back: ServeBenchReport = serde_json::from_str(&json).expect("old schema deserialises");
        assert_eq!(back.open_loop, None);
        assert_eq!(
            back.predictor_name(),
            "float",
            "pre-knob records were measured on the float tree"
        );
        back.verify().expect("old-schema report still verifies");
    }

    #[test]
    fn open_loop_gates_catch_errors_and_collapsed_schedules() {
        let mut report = healthy_report();
        if let Some(o) = report.open_loop.as_mut() {
            o.errors = 3;
        }
        let problems = report.verify().expect_err("quick open-loop errors fail");
        assert!(
            problems.iter().any(|p| p.contains("open-loop")),
            "{problems:?}"
        );
        let mut collapsed = healthy_report();
        if let Some(o) = collapsed.open_loop.as_mut() {
            o.achieved_rps = o.target_rps * 0.1;
        }
        let problems = collapsed.verify().expect_err("collapsed schedule fails");
        assert!(
            problems.iter().any(|p| p.contains("achieved")),
            "{problems:?}"
        );
    }

    #[test]
    fn report_round_trips_through_json_and_verifies() {
        let report = healthy_report();
        report.verify().expect("healthy report verifies");
        let json = serde_json::to_string_pretty(&report).expect("serialise");
        let back: ServeBenchReport = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, report);

        // A shedding quick run fails verification.
        let mut shedding = report.clone();
        shedding.shed_total = 2.0;
        let problems = shedding.verify().expect_err("shed must fail quick verify");
        assert!(problems.iter().any(|p| p.contains("shed")), "{problems:?}");
        // A full-profile run may shed without failing.
        shedding.quick = false;
        shedding.verify().expect("full profile tolerates shed");
    }

    #[test]
    fn run_verification_gates_on_the_captured_trace() {
        use pulp_obs::recorder::Recorder;
        use pulp_obs::{FlightRecorder, RequestTrace, TraceContext};

        let flight = FlightRecorder::new(4);
        let mut rec = Recorder::manual().with_trace(TraceContext::root(7));
        let root = rec.start("request");
        let mut t = 0;
        for name in ["queue_wait", "predict", "write"] {
            let span = rec.start(name);
            t += 5;
            rec.set_time(t);
            rec.end(span);
        }
        rec.end(root);
        flight.record(RequestTrace::from_recorder("/predict", 200, &rec));

        let run = ServeBenchRun {
            report: healthy_report(),
            trace_json: flight.chrome_recent(4, "pulp-serve"),
            open_loop_latencies_us: vec![100, 150, 900],
        };
        run.verify()
            .expect("healthy run with a real trace verifies");

        let bad = ServeBenchRun {
            report: healthy_report(),
            trace_json: "{}".to_string(),
            open_loop_latencies_us: Vec::new(),
        };
        let problems = bad.verify().expect_err("a malformed trace must fail");
        assert!(
            problems.iter().any(|p| p.contains("malformed")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("queue_wait")),
            "{problems:?}"
        );
    }
}

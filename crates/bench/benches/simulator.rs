//! Criterion micro-benchmarks of the cycle-level simulator: throughput in
//! simulated micro-ops per second for representative kernels and team
//! sizes. These numbers bound how long the full 448-sample labelling
//! sweep takes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kernel_ir::{lower, DType};
use pulp_kernels::{registry, KernelParams};
use pulp_sim::{simulate, ClusterConfig};

fn bench_kernels(c: &mut Criterion) {
    let cfg = ClusterConfig::default();
    let mut group = c.benchmark_group("simulate");
    for name in ["gemm", "fir", "bank_hammer"] {
        let def = registry().into_iter().find(|d| d.name == name).expect("kernel");
        let kernel = def.build(&KernelParams::new(DType::I32, 2048)).expect("build");
        for team in [1usize, 8] {
            let lowered = lower(&kernel, team, &cfg).expect("lower");
            let ops = lowered.program.dynamic_op_count();
            group.throughput(Throughput::Elements(ops));
            group.bench_with_input(
                BenchmarkId::new(name, team),
                &lowered.program,
                |b, program| b.iter(|| simulate(&cfg, program).expect("simulate")),
            );
        }
    }
    group.finish();
}

fn bench_lowering(c: &mut Criterion) {
    let cfg = ClusterConfig::default();
    let def = registry().into_iter().find(|d| d.name == "gemm").expect("kernel");
    let kernel = def.build(&KernelParams::new(DType::F32, 32768)).expect("build");
    c.bench_function("lower/gemm-32k-8c", |b| {
        b.iter(|| lower(&kernel, 8, &cfg).expect("lower"))
    });
}

criterion_group!(benches, bench_kernels, bench_lowering);
criterion_main!(benches);

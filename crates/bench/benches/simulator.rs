//! Criterion micro-benchmarks of the cycle-level simulator: throughput in
//! simulated micro-ops per second for representative kernels and team
//! sizes. These numbers bound how long the full 448-sample labelling
//! sweep takes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kernel_ir::{lower, DType};
use pulp_kernels::{registry, KernelParams};
use pulp_sim::{
    simulate, simulate_instrumented, ClusterConfig, NoTelemetry, NullSink, RegionProfiler,
};

fn bench_kernels(c: &mut Criterion) {
    let cfg = ClusterConfig::default();
    let mut group = c.benchmark_group("simulate");
    for name in ["gemm", "fir", "bank_hammer"] {
        let def = registry()
            .into_iter()
            .find(|d| d.name == name)
            .expect("kernel");
        let kernel = def
            .build(&KernelParams::new(DType::I32, 2048))
            .expect("build");
        for team in [1usize, 8] {
            let lowered = lower(&kernel, team, &cfg).expect("lower");
            let ops = lowered.program.dynamic_op_count();
            group.throughput(Throughput::Elements(ops));
            group.bench_with_input(
                BenchmarkId::new(name, team),
                &lowered.program,
                |b, program| b.iter(|| simulate(&cfg, program).expect("simulate")),
            );
        }
    }
    group.finish();
}

/// Guard: no-op telemetry must not change simulator throughput (the
/// `telemetry_guard` binary enforces the <=2% contract; this bench makes
/// the comparison visible in criterion output). The third variant prices
/// a real observer, `RegionProfiler`.
fn bench_telemetry_overhead(c: &mut Criterion) {
    let cfg = ClusterConfig::default();
    let def = registry()
        .into_iter()
        .find(|d| d.name == "gemm")
        .expect("kernel");
    let kernel = def
        .build(&KernelParams::new(DType::F32, 2048))
        .expect("build");
    let lowered = lower(&kernel, 8, &cfg).expect("lower");
    let program = &lowered.program;
    let ops = program.dynamic_op_count();

    let mut group = c.benchmark_group("telemetry");
    group.throughput(Throughput::Elements(ops));
    group.bench_function("baseline", |b| {
        b.iter(|| simulate(&cfg, program).expect("simulate"))
    });
    group.bench_function("noop-hooks", |b| {
        b.iter(|| {
            simulate_instrumented(&cfg, program, 100_000_000, &mut NullSink, &mut NoTelemetry)
                .expect("simulate")
        })
    });
    group.bench_function("region-profiler", |b| {
        b.iter(|| {
            let mut profiler = RegionProfiler::new();
            simulate_instrumented(&cfg, program, 100_000_000, &mut NullSink, &mut profiler)
                .expect("simulate")
        })
    });
    group.finish();
}

fn bench_lowering(c: &mut Criterion) {
    let cfg = ClusterConfig::default();
    let def = registry()
        .into_iter()
        .find(|d| d.name == "gemm")
        .expect("kernel");
    let kernel = def
        .build(&KernelParams::new(DType::F32, 32768))
        .expect("build");
    c.bench_function("lower/gemm-32k-8c", |b| {
        b.iter(|| lower(&kernel, 8, &cfg).expect("lower"))
    });
}

criterion_group!(
    benches,
    bench_kernels,
    bench_telemetry_overhead,
    bench_lowering
);
criterion_main!(benches);

//! Criterion micro-benchmarks of the static and trace analyses: MCA
//! port-pressure analysis, static feature extraction, energy folding and
//! textual-trace replay through the listener stack.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kernel_ir::{lower, DType};
use pulp_energy::static_feature_vector;
use pulp_energy_model::{energy_of, stats_from_trace, EnergyModel};
use pulp_kernels::{registry, KernelParams};
use pulp_mca::analyze_kernel;
use pulp_sim::{simulate, simulate_traced, ClusterConfig, TextSink};

fn gemm() -> kernel_ir::Kernel {
    registry()
        .into_iter()
        .find(|d| d.name == "gemm")
        .expect("kernel")
        .build(&KernelParams::new(DType::F32, 8196))
        .expect("build")
}

fn bench_mca(c: &mut Criterion) {
    let kernel = gemm();
    c.bench_function("mca/analyze_gemm", |b| b.iter(|| analyze_kernel(&kernel)));
}

fn bench_static_features(c: &mut Criterion) {
    let kernel = gemm();
    c.bench_function("features/static_vector", |b| {
        b.iter(|| static_feature_vector(&kernel))
    });
}

fn bench_energy_fold(c: &mut Criterion) {
    let cfg = ClusterConfig::default();
    let model = EnergyModel::table1();
    let lowered = lower(&gemm(), 8, &cfg).expect("lower");
    let stats = simulate(&cfg, &lowered.program).expect("simulate");
    c.bench_function("energy/fold_stats", |b| {
        b.iter(|| energy_of(&stats, &model, &cfg))
    });
}

fn bench_trace_replay(c: &mut Criterion) {
    let cfg = ClusterConfig::default();
    let kernel = registry()
        .into_iter()
        .find(|d| d.name == "vec_scale")
        .expect("kernel")
        .build(&KernelParams::new(DType::I32, 2048))
        .expect("build");
    let lowered = lower(&kernel, 4, &cfg).expect("lower");
    let mut sink = TextSink::new();
    simulate_traced(&cfg, &lowered.program, 10_000_000, &mut sink).expect("simulate");
    let mut group = c.benchmark_group("trace");
    group.throughput(Throughput::Bytes(sink.text.len() as u64));
    group.bench_function("replay_listeners", |b| {
        b.iter(|| stats_from_trace(&sink.text, &cfg, 4).expect("replay"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mca,
    bench_static_features,
    bench_energy_fold,
    bench_trace_replay
);
criterion_main!(benches);

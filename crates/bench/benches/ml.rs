//! Criterion micro-benchmarks of the learning stack: decision-tree
//! training at dataset scale (448 x 20 / 448 x 80), prediction, and one
//! full stratified-CV repetition — the unit of work Figure 2 repeats 100
//! times per curve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pulp_ml::{cross_val_predict, Dataset, DecisionTree, TreeParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic dataset with paper-like shape and partly-learnable labels.
fn synthetic(n: usize, d: usize) -> Dataset {
    let mut rng = StdRng::seed_from_u64(7);
    let mut features = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..10.0)).collect();
        let label = ((row[0] + row[1 % d]) as usize + rng.gen_range(0..2)) % 8;
        features.push(row);
        labels.push(label);
    }
    let names = (0..d).map(|i| format!("f{i}")).collect();
    Dataset::new(features, labels, names, 8).expect("dataset")
}

fn bench_tree_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_fit");
    for d in [20usize, 80] {
        let data = synthetic(448, d);
        group.bench_with_input(BenchmarkId::new("448xD", d), &data, |b, data| {
            b.iter(|| {
                let mut tree = DecisionTree::new(TreeParams::default());
                tree.fit(data);
                tree.node_count()
            })
        });
    }
    group.finish();
}

fn bench_tree_predict(c: &mut Criterion) {
    let data = synthetic(448, 20);
    let mut tree = DecisionTree::new(TreeParams::default());
    tree.fit(&data);
    c.bench_function("tree_predict/448", |b| {
        b.iter(|| {
            (0..data.len())
                .map(|i| tree.predict(data.row(i)))
                .sum::<usize>()
        })
    });
}

fn bench_cv_repetition(c: &mut Criterion) {
    let data = synthetic(448, 20);
    c.bench_function("cv/10-fold-repetition", |b| {
        b.iter(|| cross_val_predict(&data, 10, 0, || DecisionTree::new(TreeParams::default())))
    });
}

criterion_group!(
    benches,
    bench_tree_fit,
    bench_tree_predict,
    bench_cv_repetition
);
criterion_main!(benches);

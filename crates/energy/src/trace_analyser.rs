//! The trace analyser: parses GVSOC-style text traces line by line and
//! feeds the listener hierarchy.
//!
//! Line grammar (see `pulp_sim::trace::render_line`):
//!
//! ```text
//! <cycle>: <component path>: <payload>
//! ```
//!
//! The analyser optionally restricts processing to a cycle window — the
//! paper identifies "the range of cycles in which the parallel code
//! fragment is contained" (the `kernel()` function) and filters events to
//! it. Our traces cover exactly the kernel, so the window defaults to
//! everything.

use crate::listeners::{ListenError, PulpListeners};
use pulp_sim::ClusterConfig;
use std::fmt;

/// Errors produced while replaying a textual trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseTraceError {
    /// A line did not match the `cycle: path: payload` grammar.
    BadLine {
        /// 1-based line number.
        line: usize,
    },
    /// A listener rejected a payload.
    Listener {
        /// 1-based line number.
        line: usize,
        /// The underlying listener error.
        source: ListenError,
    },
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadLine { line } => write!(f, "trace line {line}: malformed"),
            Self::Listener { line, source } => write!(f, "trace line {line}: {source}"),
        }
    }
}

impl std::error::Error for ParseTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Listener { source, .. } => Some(source),
            Self::BadLine { .. } => None,
        }
    }
}

/// One parsed trace line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsedLine<'a> {
    /// Event cycle.
    pub cycle: u64,
    /// Component path, e.g. `cluster/pe3/insn`.
    pub path: &'a str,
    /// Event payload, e.g. `lw 0x10000040`.
    pub payload: &'a str,
}

/// Parses one `cycle: path: payload` line.
pub fn parse_line(line: &str) -> Option<ParsedLine<'_>> {
    let (cycle_str, rest) = line.split_once(": ")?;
    let (path, payload) = rest.split_once(": ")?;
    let cycle = cycle_str.trim().parse().ok()?;
    Some(ParsedLine {
        cycle,
        path,
        payload: payload.trim_end(),
    })
}

/// Replays textual traces into a [`PulpListeners`] hierarchy.
#[derive(Debug, Clone, Default)]
pub struct TraceAnalyser {
    window: Option<(u64, u64)>,
}

impl TraceAnalyser {
    /// Creates an analyser covering the whole trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restricts analysis to cycles in `[start, end)`.
    pub fn with_window(start: u64, end: u64) -> Self {
        Self {
            window: Some((start, end)),
        }
    }

    /// Replays `text` into `listeners`.
    ///
    /// Empty lines are skipped; unknown component paths are ignored by the
    /// listener hierarchy.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed lines or payloads a listener rejects.
    pub fn analyse(
        &self,
        text: &str,
        listeners: &mut PulpListeners,
    ) -> Result<(), ParseTraceError> {
        if let Some((start, _)) = self.window {
            listeners.set_window_start(start);
        }
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            if raw.trim().is_empty() {
                continue;
            }
            let parsed = parse_line(raw).ok_or(ParseTraceError::BadLine { line: line_no })?;
            if let Some((start, end)) = self.window {
                if parsed.cycle < start || parsed.cycle >= end {
                    continue;
                }
            }
            listeners
                .handle(parsed.cycle, parsed.path, parsed.payload)
                .map_err(|source| ParseTraceError::Listener {
                    line: line_no,
                    source,
                })?;
        }
        Ok(())
    }
}

/// Convenience: replays a textual trace and reconstructs run statistics.
///
/// # Errors
///
/// See [`TraceAnalyser::analyse`].
pub fn stats_from_trace(
    text: &str,
    config: &ClusterConfig,
    team_size: usize,
) -> Result<pulp_sim::SimStats, ParseTraceError> {
    let mut listeners = PulpListeners::new(config);
    TraceAnalyser::new().analyse(text, &mut listeners)?;
    Ok(listeners.into_stats(team_size))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_well_formed_lines() {
        let p = parse_line("1042: cluster/pe3/insn: lw 0x10000040").expect("parse");
        assert_eq!(p.cycle, 1042);
        assert_eq!(p.path, "cluster/pe3/insn");
        assert_eq!(p.payload, "lw 0x10000040");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_line("no separators here").is_none());
        assert!(parse_line("xyz: cluster/pe0/insn: alu").is_none());
    }

    #[test]
    fn analyse_reports_line_numbers() {
        let cfg = ClusterConfig::default();
        let mut l = PulpListeners::new(&cfg);
        let err = TraceAnalyser::new()
            .analyse("1: cluster/pe0/insn: alu\ngarbage\n", &mut l)
            .unwrap_err();
        assert_eq!(err, ParseTraceError::BadLine { line: 2 });
    }

    #[test]
    fn analyse_skips_blank_lines() {
        let cfg = ClusterConfig::default();
        let mut l = PulpListeners::new(&cfg);
        TraceAnalyser::new()
            .analyse(
                "1: cluster/pe0/insn: alu\n\n2: cluster/pe0/insn: alu\n",
                &mut l,
            )
            .expect("analyse");
        assert_eq!(l.cores[0].alu_ops, 2);
    }

    #[test]
    fn window_filters_events() {
        let cfg = ClusterConfig::default();
        let text = "1: cluster/pe0/insn: alu\n5: cluster/pe0/insn: alu\n9: cluster/pe0/insn: alu\n";
        let mut l = PulpListeners::new(&cfg);
        TraceAnalyser::with_window(2, 9)
            .analyse(text, &mut l)
            .expect("analyse");
        assert_eq!(l.cores[0].alu_ops, 1);
    }

    #[test]
    fn listener_errors_carry_line_numbers() {
        let cfg = ClusterConfig::default();
        let mut l = PulpListeners::new(&cfg);
        let err = TraceAnalyser::new()
            .analyse("1: cluster/pe0/insn: badop\n", &mut l)
            .unwrap_err();
        assert!(matches!(err, ParseTraceError::Listener { line: 1, .. }));
    }
}

//! Hierarchical trace listeners — the paper's `PULPListeners` stack.
//!
//! The paper's trace-analysis software is "a hierarchical set of listeners
//! and a trace-analyser": `PULPListeners` contains 8 `CoreListeners`, 16
//! `L1BankListeners` and 32 `L2BankListeners`; each listener registers
//! itself on the trace-analyser with the component path whose events it
//! wants. This module is that structure; the parsing half lives in
//! [`crate::trace_analyser`].

use pulp_sim::{ClusterConfig, CycleBreakdown, CycleCause, OpKind, SimStats};
use std::collections::HashMap;
use std::fmt;

/// Errors raised while interpreting event payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListenError {
    /// Unknown instruction mnemonic in a `pe/insn` payload.
    UnknownMnemonic {
        /// The offending mnemonic.
        mnemonic: String,
    },
    /// A memory instruction without a parsable address.
    BadAddress {
        /// The offending payload.
        payload: String,
    },
    /// Unknown payload on a known path.
    UnknownPayload {
        /// The offending payload.
        payload: String,
    },
    /// A `cg_exit` without a matching `cg_enter`.
    UnbalancedCg {
        /// Core with the unbalanced region.
        core: usize,
    },
}

impl fmt::Display for ListenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownMnemonic { mnemonic } => write!(f, "unknown mnemonic `{mnemonic}`"),
            Self::BadAddress { payload } => write!(f, "bad address in `{payload}`"),
            Self::UnknownPayload { payload } => write!(f, "unknown payload `{payload}`"),
            Self::UnbalancedCg { core } => write!(f, "cg_exit without cg_enter on core {core}"),
        }
    }
}

impl std::error::Error for ListenError {}

/// Listener for one processing element.
///
/// Watches `cluster/pe<N>/insn` (opcode stream) and `cluster/pe<N>/trace`
/// (stall cycles and clock-gating regions), mirroring the paper's
/// `CoreListeners`.
#[derive(Debug, Clone, Default)]
pub struct CoreListener {
    /// Integer-pipeline opcodes observed.
    pub alu_ops: u64,
    /// FP opcodes observed.
    pub fp_ops: u64,
    /// TCDM accesses observed (level inferred from the address).
    pub l1_ops: u64,
    /// L2 accesses observed.
    pub l2_ops: u64,
    /// Explicit NOPs observed.
    pub nop_ops: u64,
    /// Active-wait cycles observed.
    pub idle_cycles: u64,
    /// Clock-gated cycles accumulated from enter/exit regions.
    pub cg_cycles: u64,
    /// Non-execute cycle attribution rebuilt from `stall <cause>` lines and
    /// `cg_enter <cause>` region markers. The `execute` slot is filled from
    /// the retired-op count when converting to stats.
    pub breakdown: CycleBreakdown,
    cg_enter_at: Option<(u64, CycleCause)>,
    /// When analysing a cycle window, regions truncated by the window
    /// boundary are clamped here instead of erroring.
    window_start: Option<u64>,
}

impl CoreListener {
    /// Handles one `pe/insn` payload, e.g. `lw 0x10000040`.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown mnemonics or unparsable addresses.
    pub fn on_insn(&mut self, payload: &str, config: &ClusterConfig) -> Result<(), ListenError> {
        let mut parts = payload.split_whitespace();
        let mnemonic = parts.next().unwrap_or_default();
        let kind = OpKind::from_mnemonic(mnemonic).ok_or_else(|| ListenError::UnknownMnemonic {
            mnemonic: mnemonic.to_string(),
        })?;
        match kind {
            OpKind::Alu | OpKind::Mul | OpKind::Div | OpKind::Branch | OpKind::Jump => {
                self.alu_ops += 1;
            }
            OpKind::Fp(_) => self.fp_ops += 1,
            OpKind::Nop => self.nop_ops += 1,
            OpKind::Load | OpKind::Store => {
                let addr_str = parts.next().ok_or_else(|| ListenError::BadAddress {
                    payload: payload.to_string(),
                })?;
                let addr = parse_hex(addr_str).ok_or_else(|| ListenError::BadAddress {
                    payload: payload.to_string(),
                })?;
                // "The access level is inferred intercepting the address
                // required by the operation at runtime."
                if config.is_tcdm(addr) {
                    self.l1_ops += 1;
                } else {
                    self.l2_ops += 1;
                }
            }
        }
        Ok(())
    }

    /// Handles one `pe/trace` payload (`stall <cause>`, `cg_enter <cause>`,
    /// `cg_exit`), identifying clock-gating regions, wait cycles and their
    /// causes. A missing cause token (legacy traces) attributes to `idle`.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown payloads, unknown cause tokens or
    /// unbalanced gating regions.
    pub fn on_trace(&mut self, cycle: u64, payload: &str, core: usize) -> Result<(), ListenError> {
        let mut parts = payload.split_whitespace();
        match parts.next() {
            Some("stall") => {
                let cause = parse_cause(parts.next(), payload)?;
                self.idle_cycles += 1;
                self.breakdown.add(cause);
            }
            Some("cg_enter") => {
                let cause = parse_cause(parts.next(), payload)?;
                self.cg_enter_at = Some((cycle, cause));
            }
            Some("cg_exit") => {
                let (enter, cause) = match (self.cg_enter_at.take(), self.window_start) {
                    (Some(e), _) => e,
                    // The matching cg_enter fell before the analysis
                    // window: the core was gated since (at least) the
                    // window start, for a reason the window cannot see.
                    (None, Some(start)) => (start, CycleCause::Idle),
                    (None, None) => return Err(ListenError::UnbalancedCg { core }),
                };
                let len = cycle.saturating_sub(enter);
                self.cg_cycles += len;
                self.breakdown.add_n(cause, len);
            }
            _ => {
                return Err(ListenError::UnknownPayload {
                    payload: payload.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Closes a dangling clock-gating region at `end_cycle`.
    pub fn finish(&mut self, end_cycle: u64) {
        if let Some((enter, cause)) = self.cg_enter_at.take() {
            let len = end_cycle.saturating_sub(enter);
            self.cg_cycles += len;
            self.breakdown.add_n(cause, len);
        }
    }

    /// Retired opcodes observed so far.
    pub fn retired(&self) -> u64 {
        self.alu_ops + self.fp_ops + self.l1_ops + self.l2_ops + self.nop_ops
    }
}

/// Listener for one memory bank (TCDM or L2).
#[derive(Debug, Clone, Default)]
pub struct BankListener {
    /// Read requests served.
    pub reads: u64,
    /// Write requests served.
    pub writes: u64,
    /// Same-cycle conflicts observed.
    pub conflicts: u64,
}

impl BankListener {
    /// Handles one `bank/trace` payload (`read`, `write`, `conflict`).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown payloads.
    pub fn on_trace(&mut self, payload: &str) -> Result<(), ListenError> {
        match payload {
            "read" => self.reads += 1,
            "write" => self.writes += 1,
            "conflict" => self.conflicts += 1,
            other => {
                return Err(ListenError::UnknownPayload {
                    payload: other.to_string(),
                });
            }
        }
        Ok(())
    }
}

/// Routing target of a component path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `cluster/pe<N>/insn`.
    CoreInsn(usize),
    /// `cluster/pe<N>/trace`.
    CoreTrace(usize),
    /// `cluster/l1/bank<N>/trace`.
    L1Bank(usize),
    /// `cluster/l2/bank<N>/trace`.
    L2Bank(usize),
    /// `cluster/event_unit`.
    EventUnit,
    /// `cluster/icache`.
    Icache,
    /// `cluster/dma`.
    Dma,
}

/// The aggregate listener hierarchy for one PULP cluster.
///
/// Exposes methods to query the status of the platform and its components
/// after a trace has been replayed, and converts back into [`SimStats`]
/// for energy accounting.
#[derive(Debug, Clone)]
pub struct PulpListeners {
    config: ClusterConfig,
    /// Per-core listeners.
    pub cores: Vec<CoreListener>,
    /// Per-TCDM-bank listeners.
    pub l1: Vec<BankListener>,
    /// Per-L2-bank listeners.
    pub l2: Vec<BankListener>,
    /// Barrier releases observed.
    pub barriers: u64,
    /// Forks observed.
    pub forks: u64,
    /// I-cache refills reported.
    pub refills: u64,
    /// DMA words moved.
    pub dma_words: u64,
    /// DMA busy cycles inferred from transfers.
    pub dma_busy: u64,
    active_cycles: u64,
    last_active_cycle: Option<u64>,
    max_cycle: u64,
    routes: HashMap<String, Route>,
}

impl PulpListeners {
    /// Builds the listener hierarchy for `config`, registering every
    /// component path.
    pub fn new(config: &ClusterConfig) -> Self {
        let mut routes = HashMap::new();
        for core in 0..config.num_cores {
            routes.insert(format!("cluster/pe{core}/insn"), Route::CoreInsn(core));
            routes.insert(format!("cluster/pe{core}/trace"), Route::CoreTrace(core));
        }
        for bank in 0..config.tcdm_banks {
            routes.insert(format!("cluster/l1/bank{bank}/trace"), Route::L1Bank(bank));
        }
        for bank in 0..config.l2_banks {
            routes.insert(format!("cluster/l2/bank{bank}/trace"), Route::L2Bank(bank));
        }
        routes.insert("cluster/event_unit".to_string(), Route::EventUnit);
        routes.insert("cluster/icache".to_string(), Route::Icache);
        routes.insert("cluster/dma".to_string(), Route::Dma);
        Self {
            cores: vec![CoreListener::default(); config.num_cores],
            l1: vec![BankListener::default(); config.tcdm_banks],
            l2: vec![BankListener::default(); config.l2_banks],
            barriers: 0,
            forks: 0,
            refills: 0,
            dma_words: 0,
            dma_busy: 0,
            active_cycles: 0,
            last_active_cycle: None,
            max_cycle: 0,
            routes,
            config: config.clone(),
        }
    }

    /// Declares that analysis is restricted to a window starting at
    /// `start`: clock-gating regions truncated by the boundary are clamped
    /// to it rather than rejected.
    pub fn set_window_start(&mut self, start: u64) {
        for c in &mut self.cores {
            c.window_start = Some(start);
        }
    }

    /// The registered path → listener routing table (for diagnostics).
    pub fn registered_paths(&self) -> impl Iterator<Item = &str> {
        self.routes.keys().map(String::as_str)
    }

    /// Dispatches one parsed event to its listener.
    ///
    /// Unknown paths are ignored (GVSOC traces interleave many components;
    /// the paper's analyser likewise filters for "the useful components").
    ///
    /// # Errors
    ///
    /// Returns an error when a known path carries a malformed payload.
    pub fn handle(&mut self, cycle: u64, path: &str, payload: &str) -> Result<(), ListenError> {
        self.max_cycle = self.max_cycle.max(cycle);
        let Some(&route) = self.routes.get(path) else {
            return Ok(());
        };
        match route {
            Route::CoreInsn(core) => {
                self.mark_active(cycle);
                self.cores[core].on_insn(payload, &self.config)?;
            }
            Route::CoreTrace(core) => {
                if payload.split_whitespace().next() == Some("stall") {
                    self.mark_active(cycle);
                }
                self.cores[core].on_trace(cycle, payload, core)?;
            }
            Route::L1Bank(bank) => self.l1[bank].on_trace(payload)?,
            Route::L2Bank(bank) => self.l2[bank].on_trace(payload)?,
            Route::EventUnit => match payload.split_whitespace().next() {
                Some("release") => self.barriers += 1,
                Some("fork") => self.forks += 1,
                Some("arrive") => {}
                _ => {
                    return Err(ListenError::UnknownPayload {
                        payload: payload.to_string(),
                    });
                }
            },
            Route::Icache => {
                let mut parts = payload.split_whitespace();
                match (parts.next(), parts.next()) {
                    (Some("refill"), Some(n)) => {
                        self.refills +=
                            n.parse::<u64>().map_err(|_| ListenError::UnknownPayload {
                                payload: payload.to_string(),
                            })?;
                    }
                    _ => {
                        return Err(ListenError::UnknownPayload {
                            payload: payload.to_string(),
                        });
                    }
                }
            }
            Route::Dma => {
                let mut parts = payload.split_whitespace();
                match (parts.next(), parts.next(), parts.next()) {
                    (Some("transfer"), Some("in" | "out"), Some(n)) => {
                        let words: u64 = n.parse().map_err(|_| ListenError::UnknownPayload {
                            payload: payload.to_string(),
                        })?;
                        self.dma_words += words;
                        self.dma_busy += pulp_sim::dma::DmaTransfer::inbound(words).busy_cycles();
                    }
                    _ => {
                        return Err(ListenError::UnknownPayload {
                            payload: payload.to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    fn mark_active(&mut self, cycle: u64) {
        if self.last_active_cycle != Some(cycle) {
            self.last_active_cycle = Some(cycle);
            self.active_cycles += 1;
        }
    }

    /// Finalises listeners and reconstructs the run statistics.
    ///
    /// `team_size` is external metadata (the trace does not state how many
    /// cores the program was lowered for).
    pub fn into_stats(mut self, team_size: usize) -> SimStats {
        let cycles = self.max_cycle;
        for c in &mut self.cores {
            c.finish(cycles);
        }
        let mut stats = SimStats::new(
            self.config.num_cores,
            self.config.tcdm_banks,
            self.config.l2_banks,
        );
        stats.cycles = cycles;
        stats.team_size = team_size;
        for (i, c) in self.cores.iter().enumerate() {
            let s = &mut stats.cores[i];
            s.alu_ops = c.alu_ops;
            s.fp_ops = c.fp_ops;
            s.l1_ops = c.l1_ops;
            s.l2_ops = c.l2_ops;
            s.nop_ops = c.nop_ops;
            s.idle_cycles = c.idle_cycles;
            s.cg_cycles = c.cg_cycles;
            s.fetches = c.retired();
            s.breakdown = c.breakdown;
            // One cycle retires per observed opcode; the simulator counts
            // them the same way.
            s.breakdown.execute = c.retired();
        }
        for (i, b) in self.l1.iter().enumerate() {
            stats.l1_banks[i].reads = b.reads;
            stats.l1_banks[i].writes = b.writes;
            stats.l1_banks[i].conflicts = b.conflicts;
        }
        for (i, b) in self.l2.iter().enumerate() {
            stats.l2_banks[i].reads = b.reads;
            stats.l2_banks[i].writes = b.writes;
            stats.l2_banks[i].conflicts = b.conflicts;
        }
        stats.icache.fetches = stats.cores.iter().map(|c| c.fetches).sum();
        stats.icache.refills = self.refills;
        stats.dma.words_transferred = self.dma_words;
        stats.dma.busy_cycles = self.dma_busy;
        stats.barriers = self.barriers;
        stats.cluster_active_cycles = self.active_cycles;
        stats
    }
}

fn parse_hex(s: &str) -> Option<u32> {
    let hex = s.strip_prefix("0x")?;
    u32::from_str_radix(hex, 16).ok()
}

/// Decodes the optional cause token trailing `stall` / `cg_enter`.
fn parse_cause(token: Option<&str>, payload: &str) -> Result<CycleCause, ListenError> {
    match token {
        None => Ok(CycleCause::Idle),
        Some(tok) => CycleCause::from_token(tok).ok_or_else(|| ListenError::UnknownPayload {
            payload: payload.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ClusterConfig {
        ClusterConfig::default()
    }

    #[test]
    fn core_listener_classifies_opcodes() {
        let cfg = config();
        let mut c = CoreListener::default();
        c.on_insn("alu", &cfg).expect("alu");
        c.on_insn("mul", &cfg).expect("mul");
        c.on_insn("fmul", &cfg).expect("fmul");
        c.on_insn("lw 0x10000040", &cfg).expect("tcdm load");
        c.on_insn("sw 0x1c000000", &cfg).expect("l2 store");
        c.on_insn("nop", &cfg).expect("nop");
        assert_eq!(c.alu_ops, 2);
        assert_eq!(c.fp_ops, 1);
        assert_eq!(c.l1_ops, 1);
        assert_eq!(c.l2_ops, 1);
        assert_eq!(c.nop_ops, 1);
        assert_eq!(c.retired(), 6);
    }

    #[test]
    fn core_listener_rejects_garbage() {
        let cfg = config();
        let mut c = CoreListener::default();
        assert!(matches!(
            c.on_insn("frobnicate", &cfg),
            Err(ListenError::UnknownMnemonic { .. })
        ));
        assert!(matches!(
            c.on_insn("lw", &cfg),
            Err(ListenError::BadAddress { .. })
        ));
        assert!(matches!(
            c.on_insn("lw zzz", &cfg),
            Err(ListenError::BadAddress { .. })
        ));
    }

    #[test]
    fn cg_regions_accumulate() {
        let mut c = CoreListener::default();
        c.on_trace(10, "cg_enter", 0).expect("enter");
        c.on_trace(15, "cg_exit", 0).expect("exit");
        c.on_trace(20, "cg_enter", 0).expect("enter");
        c.on_trace(22, "cg_exit", 0).expect("exit");
        assert_eq!(c.cg_cycles, 5 + 2);
    }

    #[test]
    fn stall_and_cg_causes_accumulate_in_breakdown() {
        let mut c = CoreListener::default();
        c.on_trace(1, "stall tcdm_conflict", 0).expect("stall");
        c.on_trace(2, "stall fpu_contention", 0).expect("stall");
        c.on_trace(3, "cg_enter barrier", 0).expect("enter");
        c.on_trace(8, "cg_exit", 0).expect("exit");
        assert_eq!(c.breakdown.tcdm_conflict, 1);
        assert_eq!(c.breakdown.fpu_contention, 1);
        assert_eq!(c.breakdown.barrier, 5);
        assert_eq!(c.idle_cycles, 2);
        assert_eq!(c.cg_cycles, 5);
    }

    #[test]
    fn unknown_cause_token_is_rejected() {
        let mut c = CoreListener::default();
        assert!(matches!(
            c.on_trace(1, "stall daydreaming", 0),
            Err(ListenError::UnknownPayload { .. })
        ));
    }

    #[test]
    fn dangling_cg_region_closed_by_finish() {
        let mut c = CoreListener::default();
        c.on_trace(10, "cg_enter", 0).expect("enter");
        c.finish(100);
        assert_eq!(c.cg_cycles, 90);
    }

    #[test]
    fn unbalanced_cg_exit_is_an_error() {
        let mut c = CoreListener::default();
        assert!(matches!(
            c.on_trace(5, "cg_exit", 3),
            Err(ListenError::UnbalancedCg { core: 3 })
        ));
    }

    #[test]
    fn windowed_cg_exit_clamps_to_window_start() {
        let mut l = PulpListeners::new(&config());
        l.set_window_start(10);
        l.handle(25, "cluster/pe2/trace", "cg_exit")
            .expect("clamped exit");
        let stats = l.into_stats(3);
        assert_eq!(stats.cores[2].cg_cycles, 15);
    }

    #[test]
    fn routing_table_covers_all_components() {
        let l = PulpListeners::new(&config());
        let paths: Vec<&str> = l.registered_paths().collect();
        // 8 cores x 2 + 16 + 32 + event unit + icache + dma
        assert_eq!(paths.len(), 8 * 2 + 16 + 32 + 3);
        assert!(paths.contains(&"cluster/pe7/trace"));
        assert!(paths.contains(&"cluster/l1/bank15/trace"));
        assert!(paths.contains(&"cluster/l2/bank31/trace"));
    }

    #[test]
    fn unknown_paths_are_ignored() {
        let mut l = PulpListeners::new(&config());
        assert!(l.handle(1, "soc/uart", "whatever").is_ok());
    }

    #[test]
    fn active_cycles_count_distinct_cycles() {
        let mut l = PulpListeners::new(&config());
        l.handle(1, "cluster/pe0/insn", "alu").expect("insn");
        l.handle(1, "cluster/pe1/insn", "alu").expect("insn");
        l.handle(2, "cluster/pe0/trace", "stall").expect("stall");
        let stats = l.into_stats(2);
        assert_eq!(stats.cluster_active_cycles, 2);
    }

    #[test]
    fn into_stats_reconstructs_counters() {
        let mut l = PulpListeners::new(&config());
        l.handle(0, "cluster/pe0/insn", "alu").expect("insn");
        l.handle(1, "cluster/l1/bank3/trace", "write")
            .expect("bank");
        l.handle(1, "cluster/l1/bank3/trace", "conflict")
            .expect("bank");
        l.handle(2, "cluster/event_unit", "release").expect("eu");
        l.handle(3, "cluster/icache", "refill 4").expect("icache");
        let stats = l.into_stats(1);
        assert_eq!(stats.cores[0].alu_ops, 1);
        assert_eq!(stats.l1_banks[3].writes, 1);
        assert_eq!(stats.l1_banks[3].conflicts, 1);
        assert_eq!(stats.barriers, 1);
        assert_eq!(stats.icache.refills, 4);
        assert_eq!(stats.cycles, 3);
    }
}

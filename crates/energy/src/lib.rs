//! # pulp-energy-model — energy accounting for the PULP cluster
//!
//! Implements the paper's Table-I energy model and the two paths that feed
//! it:
//!
//! * the **fast path**: [`energy_of`] folds a [`pulp_sim::SimStats`]
//!   directly with the model;
//! * the **trace path**: the GVSOC-style textual trace is replayed through
//!   the paper's listener hierarchy ([`PulpListeners`]: 8 core listeners,
//!   16 L1-bank listeners, 32 L2-bank listeners registered on a
//!   [`TraceAnalyser`]) and the reconstructed statistics are folded with
//!   the same model.
//!
//! Integration tests assert that both paths agree to the femtojoule.
//!
//! The crate also extracts the Table-III **dynamic features**
//! ([`DynamicFeatures`]) used to train the profile-based classifier the
//! paper compares against.
//!
//! # Examples
//!
//! ```
//! use pulp_energy_model::{energy_of, EnergyModel};
//! use pulp_sim::{simulate, ClusterConfig, Program, SegOp, OpKind};
//!
//! # fn main() -> Result<(), pulp_sim::SimError> {
//! let program = Program::new(vec![vec![
//!     SegOp::Instr { kind: OpKind::Alu, addr: None },
//! ]]);
//! let config = ClusterConfig::default();
//! let stats = simulate(&config, &program)?;
//! let energy = energy_of(&stats, &EnergyModel::table1(), &config);
//! assert!(energy.total() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod accounting;
pub mod dynamic_features;
pub mod listeners;
pub mod model;
pub mod power;
pub mod summary;
pub mod trace_analyser;

/// Version of the energy model and feature-extraction pipeline.
///
/// Bump this whenever Table-I coefficients, the accounting rules in
/// [`energy_of`], the [`DynamicFeatures`] extraction, or the downstream
/// classifier/serving stack change numeric results. The `pulp-energy`
/// sweep cache folds this constant into its keys, so a bump invalidates
/// cached energies instead of serving stale ones, and every run manifest
/// records it as provenance.
///
/// v2: model-zoo release — the serving batch path moved to the quantized
/// flat compilation of the tree, so cached artifacts and manifests from
/// the float-only era are no longer comparable.
pub const MODEL_VERSION: u32 = 2;

pub use accounting::{
    energy_of, energy_waterfall, render_breakdown, EnergyBreakdown, EnergyWaterfall, WaterfallEntry,
};
pub use dynamic_features::{DynamicFeatures, DYNAMIC_FEATURE_NAMES};
pub use listeners::{BankListener, CoreListener, ListenError, PulpListeners, Route};
pub use model::{
    BankEnergy, DmaEnergy, EnergyModel, Femtojoules, FpuEnergy, IcacheEnergy, OtherEnergy, PeEnergy,
};
pub use power::{render_profile, PowerProbe};
pub use summary::EnergySummary;
pub use trace_analyser::{
    parse_line, stats_from_trace, ParseTraceError, ParsedLine, TraceAnalyser,
};

#[cfg(test)]
mod parity_tests {
    //! Fast path vs trace path: both must reconstruct identical statistics
    //! and therefore identical energy.

    use super::*;
    use pulp_sim::{
        simulate_traced, AddrExpr, ClusterConfig, OpKind, Program, SegOp, TextSink, L2_BASE,
        TCDM_BASE,
    };

    fn demo_program() -> Program {
        let instr = |kind| SegOp::Instr { kind, addr: None };
        let load = |addr: u32| SegOp::Instr {
            kind: OpKind::Load,
            addr: Some(AddrExpr::constant(addr)),
        };
        let store = |addr: u32| SegOp::Instr {
            kind: OpKind::Store,
            addr: Some(AddrExpr::constant(addr)),
        };
        // Master: fork, loop of mixed work, barrier. Worker: waits, works.
        let master = vec![
            instr(OpKind::Alu),
            SegOp::Fork,
            SegOp::LoopBegin { trip: 10 },
            load(TCDM_BASE),
            instr(OpKind::Fp(pulp_sim::FpOp::Mul)),
            store(TCDM_BASE + 64),
            instr(OpKind::Branch),
            SegOp::LoopEnd,
            load(L2_BASE),
            SegOp::Barrier,
        ];
        let worker = vec![
            SegOp::WaitFork,
            SegOp::LoopBegin { trip: 10 },
            load(TCDM_BASE),                        // same bank as master: conflicts
            instr(OpKind::Fp(pulp_sim::FpOp::Mul)), // same FPU pair for core 4
            instr(OpKind::Nop),
            SegOp::LoopEnd,
            SegOp::Barrier,
        ];
        Program::new(vec![master, worker.clone(), worker])
    }

    #[test]
    fn trace_reconstruction_matches_simulator_stats() {
        let config = ClusterConfig::default();
        let program = demo_program();
        let mut sink = TextSink::new();
        let direct = simulate_traced(&config, &program, 1_000_000, &mut sink).expect("simulate");
        let reconstructed =
            stats_from_trace(&sink.text, &config, program.num_cores()).expect("replay");
        // Replay reconstructs architectural state; fast-forward span
        // counters are diagnostics the trace does not carry.
        assert_eq!(direct.without_fast_forward(), reconstructed);
    }

    #[test]
    fn energy_agrees_between_paths() {
        let config = ClusterConfig::default();
        let program = demo_program();
        let mut sink = TextSink::new();
        let direct = simulate_traced(&config, &program, 1_000_000, &mut sink).expect("simulate");
        let model = EnergyModel::table1();
        let e_direct = energy_of(&direct, &model, &config);
        let reconstructed =
            stats_from_trace(&sink.text, &config, program.num_cores()).expect("replay");
        let e_trace = energy_of(&reconstructed, &model, &config);
        assert!((e_direct.total() - e_trace.total()).abs() < 1e-6);
    }
}

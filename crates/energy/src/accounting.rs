//! Combining execution statistics with the energy model.
//!
//! This is step (D) of the paper's workflow: execution activity (from the
//! simulator or from the trace-analyser) is folded with the Table-I
//! coefficients into a per-component energy breakdown.

use crate::model::{EnergyModel, Femtojoules};
use pulp_obs::Recorder;
use pulp_sim::{ClusterConfig, SimStats};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-component energy of one run, in femtojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Processing elements (leakage + opcodes + active wait + gating).
    pub pe: Femtojoules,
    /// Shared FPUs.
    pub fpu: Femtojoules,
    /// TCDM banks.
    pub l1: Femtojoules,
    /// L2 banks.
    pub l2: Femtojoules,
    /// Instruction cache.
    pub icache: Femtojoules,
    /// DMA engine.
    pub dma: Femtojoules,
    /// Other cluster components.
    pub other: Femtojoules,
}

impl EnergyBreakdown {
    /// Total energy in femtojoules.
    pub fn total(&self) -> Femtojoules {
        self.pe + self.fpu + self.l1 + self.l2 + self.icache + self.dma + self.other
    }

    /// Total energy in microjoules (convenience for reports).
    pub fn total_uj(&self) -> f64 {
        self.total() * 1e-9
    }
}

/// One line of the energy waterfall: a component in one operating region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct WaterfallEntry {
    /// Component the energy belongs to (`pe`, `fpu`, `l1`, ...).
    pub component: &'static str,
    /// Operating region within the component (`leakage`, `alu_op`, ...).
    pub region: &'static str,
    /// Energy in femtojoules.
    pub fj: Femtojoules,
}

/// The full per-component, per-operating-region energy attribution of one
/// run. [`EnergyBreakdown`] is this waterfall summed per component;
/// [`energy_of`] is derived from it, so the two views always agree.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct EnergyWaterfall {
    /// Waterfall lines in canonical (component, region) order.
    pub entries: Vec<WaterfallEntry>,
}

impl EnergyWaterfall {
    /// Total energy in femtojoules.
    pub fn total(&self) -> Femtojoules {
        self.entries.iter().map(|e| e.fj).sum()
    }

    /// Energy of one component summed over its operating regions.
    pub fn component_total(&self, component: &str) -> Femtojoules {
        self.entries
            .iter()
            .filter(|e| e.component == component)
            .map(|e| e.fj)
            .sum()
    }

    /// Collapses the waterfall into the per-component [`EnergyBreakdown`].
    pub fn breakdown(&self) -> EnergyBreakdown {
        EnergyBreakdown {
            pe: self.component_total("pe"),
            fpu: self.component_total("fpu"),
            l1: self.component_total("l1"),
            l2: self.component_total("l2"),
            icache: self.component_total("icache"),
            dma: self.component_total("dma"),
            other: self.component_total("other"),
        }
    }

    /// Publishes every waterfall line as an `energy/<component>/<region>`
    /// counter (fJ) on `rec`, plus `energy/total`.
    pub fn record(&self, rec: &mut Recorder) {
        for e in &self.entries {
            rec.counter(&format!("energy/{}/{}", e.component, e.region), e.fj);
        }
        rec.counter("energy/total", self.total());
    }
}

impl fmt::Display for EnergyWaterfall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total().max(f64::MIN_POSITIVE);
        writeln!(
            f,
            "{:<10} {:<12} {:>12} {:>7}",
            "component", "region", "energy [uJ]", "share"
        )?;
        for e in &self.entries {
            writeln!(
                f,
                "{:<10} {:<12} {:>12.4} {:>6.1}%",
                e.component,
                e.region,
                e.fj * 1e-9,
                100.0 * e.fj / total
            )?;
        }
        writeln!(
            f,
            "{:<10} {:<12} {:>12.4}",
            "total",
            "",
            self.total() * 1e-9
        )
    }
}

/// Computes the full per-region energy waterfall of a run.
///
/// `config` supplies the component counts that are not recorded in the
/// statistics (number of FPUs).
pub fn energy_waterfall(
    stats: &SimStats,
    model: &EnergyModel,
    config: &ClusterConfig,
) -> EnergyWaterfall {
    let cycles = stats.cycles as f64;
    let n_cores = stats.cores.len() as f64;

    let mut active_wait: u64 = 0;
    let mut cg: u64 = 0;
    let mut alu: u64 = 0;
    let mut fp_ops_total: u64 = 0;
    let mut l1_ops: u64 = 0;
    let mut l2_ops: u64 = 0;
    for c in &stats.cores {
        active_wait += c.active_wait_cycles();
        cg += c.cg_cycles;
        alu += c.alu_ops;
        fp_ops_total += c.fp_ops;
        l1_ops += c.l1_ops;
        l2_ops += c.l2_ops;
    }

    let fpus = config.num_fpus as f64;
    let fpu_busy = fp_ops_total as f64;
    let fpu_idle = (fpus * cycles - fpu_busy).max(0.0);

    let mut l1_reads: u64 = 0;
    let mut l1_writes: u64 = 0;
    let mut l1_idle = 0.0;
    for b in &stats.l1_banks {
        l1_reads += b.reads;
        l1_writes += b.writes;
        l1_idle += (cycles - b.busy_cycles() as f64).max(0.0);
    }
    let mut l2_reads: u64 = 0;
    let mut l2_writes: u64 = 0;
    let mut l2_idle = 0.0;
    for b in &stats.l2_banks {
        l2_reads += b.reads;
        l2_writes += b.writes;
        l2_idle += (cycles - b.busy_cycles() as f64).max(0.0);
    }

    let dma_busy = stats.dma.busy_cycles as f64;

    let entries = vec![
        WaterfallEntry {
            component: "pe",
            region: "leakage",
            fj: model.pe.leakage * n_cores * cycles,
        },
        WaterfallEntry {
            component: "pe",
            region: "active_wait",
            fj: model.pe.nop * active_wait as f64,
        },
        WaterfallEntry {
            component: "pe",
            region: "clock_gated",
            fj: model.pe.cg * cg as f64,
        },
        WaterfallEntry {
            component: "pe",
            region: "alu_op",
            fj: model.pe.alu * alu as f64,
        },
        WaterfallEntry {
            component: "pe",
            region: "fp_op",
            fj: model.pe.fp * fp_ops_total as f64,
        },
        WaterfallEntry {
            component: "pe",
            region: "l1_access",
            fj: model.pe.l1 * l1_ops as f64,
        },
        WaterfallEntry {
            component: "pe",
            region: "l2_access",
            fj: model.pe.l2 * l2_ops as f64,
        },
        WaterfallEntry {
            component: "fpu",
            region: "leakage",
            fj: model.fpu.leakage * fpus * cycles,
        },
        WaterfallEntry {
            component: "fpu",
            region: "operative",
            fj: model.fpu.operative * fpu_busy,
        },
        WaterfallEntry {
            component: "fpu",
            region: "idle",
            fj: model.fpu.idle * fpu_idle,
        },
        WaterfallEntry {
            component: "l1",
            region: "leakage",
            fj: model.l1_bank.leakage * stats.l1_banks.len() as f64 * cycles,
        },
        WaterfallEntry {
            component: "l1",
            region: "read",
            fj: model.l1_bank.read * l1_reads as f64,
        },
        WaterfallEntry {
            component: "l1",
            region: "write",
            fj: model.l1_bank.write * l1_writes as f64,
        },
        WaterfallEntry {
            component: "l1",
            region: "idle",
            fj: model.l1_bank.idle * l1_idle,
        },
        WaterfallEntry {
            component: "l2",
            region: "leakage",
            fj: model.l2_bank.leakage * stats.l2_banks.len() as f64 * cycles,
        },
        WaterfallEntry {
            component: "l2",
            region: "read",
            fj: model.l2_bank.read * l2_reads as f64,
        },
        WaterfallEntry {
            component: "l2",
            region: "write",
            fj: model.l2_bank.write * l2_writes as f64,
        },
        WaterfallEntry {
            component: "l2",
            region: "idle",
            fj: model.l2_bank.idle * l2_idle,
        },
        WaterfallEntry {
            component: "icache",
            region: "leakage",
            fj: model.icache.leakage * cycles,
        },
        WaterfallEntry {
            component: "icache",
            region: "use",
            fj: model.icache.use_ * stats.icache.fetches as f64,
        },
        WaterfallEntry {
            component: "icache",
            region: "refill",
            fj: model.icache.refill * stats.icache.refills as f64,
        },
        WaterfallEntry {
            component: "dma",
            region: "leakage",
            fj: model.dma.leakage * cycles,
        },
        WaterfallEntry {
            component: "dma",
            region: "transfer",
            fj: model.dma.transfer * stats.dma.words_transferred as f64,
        },
        WaterfallEntry {
            component: "dma",
            region: "idle",
            fj: model.dma.idle * (cycles - dma_busy).max(0.0),
        },
        WaterfallEntry {
            component: "other",
            region: "leakage",
            fj: model.other.leakage * cycles,
        },
        WaterfallEntry {
            component: "other",
            region: "active",
            fj: model.other.active * stats.cluster_active_cycles as f64,
        },
    ];
    EnergyWaterfall { entries }
}

/// Computes the energy of a run described by `stats`.
///
/// `config` supplies the component counts that are not recorded in the
/// statistics (number of FPUs). This is [`energy_waterfall`] collapsed per
/// component.
pub fn energy_of(stats: &SimStats, model: &EnergyModel, config: &ClusterConfig) -> EnergyBreakdown {
    energy_waterfall(stats, model, config).breakdown()
}

/// Renders a per-component breakdown with percentages.
pub fn render_breakdown(e: &EnergyBreakdown) -> String {
    use std::fmt::Write as _;
    let total = e.total().max(f64::MIN_POSITIVE);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:>12} {:>7}",
        "component", "energy [uJ]", "share"
    );
    for (name, v) in [
        ("PE", e.pe),
        ("FPU", e.fpu),
        ("L1", e.l1),
        ("L2", e.l2),
        ("I$", e.icache),
        ("DMA", e.dma),
        ("other", e.other),
    ] {
        let _ = writeln!(
            out,
            "{name:<8} {:>12.4} {:>6.1}%",
            v * 1e-9,
            100.0 * v / total
        );
    }
    let _ = writeln!(out, "{:<8} {:>12.4}", "total", e.total_uj());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ClusterConfig {
        ClusterConfig::default()
    }

    fn empty_stats(cycles: u64) -> SimStats {
        let c = config();
        let mut s = SimStats::new(c.num_cores, c.tcdm_banks, c.l2_banks);
        s.cycles = cycles;
        for core in &mut s.cores {
            core.cg_cycles = cycles;
        }
        s
    }

    #[test]
    fn zero_cycles_zero_energy() {
        let s = empty_stats(0);
        let e = energy_of(&s, &EnergyModel::table1(), &config());
        assert_eq!(e.total(), 0.0);
    }

    #[test]
    fn idle_cluster_burns_leakage_and_gating() {
        let s = empty_stats(1000);
        let m = EnergyModel::table1();
        let e = energy_of(&s, &m, &config());
        // 8 cores: leakage + cg for every cycle.
        let expected_pe = 8.0 * 1000.0 * (m.pe.leakage + m.pe.cg);
        assert!((e.pe - expected_pe).abs() < 1e-6);
        // All banks idle.
        let expected_l1 = 16.0 * 1000.0 * (m.l1_bank.leakage + m.l1_bank.idle);
        assert!((e.l1 - expected_l1).abs() < 1e-6);
        assert!(e.total() > 0.0);
    }

    #[test]
    fn op_energy_is_additive() {
        let mut s = empty_stats(100);
        s.cores[0].cg_cycles = 0;
        s.cores[0].alu_ops = 50;
        s.cores[0].idle_cycles = 50;
        s.cores[0].fetches = 50;
        s.icache.fetches = 50;
        let m = EnergyModel::table1();
        let base = energy_of(&empty_stats(100), &m, &config());
        let e = energy_of(&s, &m, &config());
        let delta = e.pe - base.pe;
        let expected = 50.0 * m.pe.alu + 50.0 * m.pe.nop - 100.0 * m.pe.cg;
        assert!(
            (delta - expected).abs() < 1e-6,
            "delta = {delta}, expected = {expected}"
        );
    }

    #[test]
    fn fp_ops_charge_core_and_fpu() {
        let mut s = empty_stats(10);
        s.cores[2].fp_ops = 4;
        let m = EnergyModel::table1();
        let e = energy_of(&s, &m, &config());
        let base = energy_of(&empty_stats(10), &m, &config());
        assert!((e.pe - base.pe - 4.0 * m.pe.fp).abs() < 1e-6);
        assert!((e.fpu - base.fpu - 4.0 * m.fpu.operative).abs() < 1e-6);
    }

    #[test]
    fn breakdown_renders_all_components() {
        let e = EnergyBreakdown {
            pe: 50.0e9,
            fpu: 10.0e9,
            l1: 10.0e9,
            l2: 10.0e9,
            icache: 10.0e9,
            dma: 5.0e9,
            other: 5.0e9,
        };
        let s = render_breakdown(&e);
        assert!(s.contains("PE"));
        assert!(s.contains("50.0%"));
        assert!(s.contains("total"));
        assert_eq!(s.lines().count(), 1 + 7 + 1);
    }

    #[test]
    fn waterfall_agrees_with_breakdown() {
        let mut s = empty_stats(123);
        s.cores[1].alu_ops = 9;
        s.cores[1].fp_ops = 3;
        s.l1_banks[0].reads = 5;
        s.icache.fetches = 12;
        let m = EnergyModel::table1();
        let cfg = config();
        let w = energy_waterfall(&s, &m, &cfg);
        let e = energy_of(&s, &m, &cfg);
        assert!((w.total() - e.total()).abs() < 1e-6);
        assert!((w.component_total("pe") - e.pe).abs() < 1e-6);
        assert!((w.component_total("l1") - e.l1).abs() < 1e-6);
        // Every entry has a unique (component, region) pair.
        let mut keys: Vec<(&str, &str)> =
            w.entries.iter().map(|x| (x.component, x.region)).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), w.entries.len());
    }

    #[test]
    fn waterfall_records_counters() {
        let s = empty_stats(10);
        let w = energy_waterfall(&s, &EnergyModel::table1(), &config());
        let mut rec = pulp_obs::Recorder::manual();
        w.record(&mut rec);
        assert!(rec.counters().contains_key("energy/pe/leakage"));
        assert!(rec.counters().contains_key("energy/total"));
        let total = rec.counters()["energy/total"].last().expect("sample").value;
        assert!((total - w.total()).abs() < 1e-6);
    }

    #[test]
    fn waterfall_display_is_a_table() {
        let s = empty_stats(10);
        let w = energy_waterfall(&s, &EnergyModel::table1(), &config());
        let text = w.to_string();
        assert!(text.contains("component"));
        assert!(text.contains("clock_gated"));
        assert!(text.lines().count() >= w.entries.len() + 2);
    }

    #[test]
    fn breakdown_total_sums_components() {
        let mut s = empty_stats(10);
        s.l1_banks[3].reads = 7;
        s.dma.words_transferred = 2;
        let e = energy_of(&s, &EnergyModel::table1(), &config());
        let sum = e.pe + e.fpu + e.l1 + e.l2 + e.icache + e.dma + e.other;
        assert!((e.total() - sum).abs() < 1e-9);
        assert!((e.total_uj() - e.total() * 1e-9).abs() < 1e-15);
    }
}

//! Combining execution statistics with the energy model.
//!
//! This is step (D) of the paper's workflow: execution activity (from the
//! simulator or from the trace-analyser) is folded with the Table-I
//! coefficients into a per-component energy breakdown.

use crate::model::{EnergyModel, Femtojoules};
use pulp_sim::{ClusterConfig, SimStats};
use serde::{Deserialize, Serialize};

/// Per-component energy of one run, in femtojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Processing elements (leakage + opcodes + active wait + gating).
    pub pe: Femtojoules,
    /// Shared FPUs.
    pub fpu: Femtojoules,
    /// TCDM banks.
    pub l1: Femtojoules,
    /// L2 banks.
    pub l2: Femtojoules,
    /// Instruction cache.
    pub icache: Femtojoules,
    /// DMA engine.
    pub dma: Femtojoules,
    /// Other cluster components.
    pub other: Femtojoules,
}

impl EnergyBreakdown {
    /// Total energy in femtojoules.
    pub fn total(&self) -> Femtojoules {
        self.pe + self.fpu + self.l1 + self.l2 + self.icache + self.dma + self.other
    }

    /// Total energy in microjoules (convenience for reports).
    pub fn total_uj(&self) -> f64 {
        self.total() * 1e-9
    }
}

/// Computes the energy of a run described by `stats`.
///
/// `config` supplies the component counts that are not recorded in the
/// statistics (number of FPUs).
pub fn energy_of(stats: &SimStats, model: &EnergyModel, config: &ClusterConfig) -> EnergyBreakdown {
    let cycles = stats.cycles as f64;

    let mut pe = 0.0;
    let mut fp_ops_total: u64 = 0;
    for c in &stats.cores {
        pe += model.pe.leakage * cycles;
        pe += model.pe.nop * c.active_wait_cycles() as f64;
        pe += model.pe.cg * c.cg_cycles as f64;
        pe += model.pe.alu * c.alu_ops as f64;
        pe += model.pe.fp * c.fp_ops as f64;
        pe += model.pe.l1 * c.l1_ops as f64;
        pe += model.pe.l2 * c.l2_ops as f64;
        fp_ops_total += c.fp_ops;
    }

    let fpus = config.num_fpus as f64;
    let fpu_busy = fp_ops_total as f64;
    let fpu_idle = (fpus * cycles - fpu_busy).max(0.0);
    let fpu = model.fpu.leakage * fpus * cycles
        + model.fpu.operative * fpu_busy
        + model.fpu.idle * fpu_idle;

    let mut l1 = 0.0;
    for b in &stats.l1_banks {
        l1 += model.l1_bank.leakage * cycles;
        l1 += model.l1_bank.read * b.reads as f64;
        l1 += model.l1_bank.write * b.writes as f64;
        l1 += model.l1_bank.idle * (cycles - b.busy_cycles() as f64).max(0.0);
    }

    let mut l2 = 0.0;
    for b in &stats.l2_banks {
        l2 += model.l2_bank.leakage * cycles;
        l2 += model.l2_bank.read * b.reads as f64;
        l2 += model.l2_bank.write * b.writes as f64;
        l2 += model.l2_bank.idle * (cycles - b.busy_cycles() as f64).max(0.0);
    }

    let icache = model.icache.leakage * cycles
        + model.icache.use_ * stats.icache.fetches as f64
        + model.icache.refill * stats.icache.refills as f64;

    let dma_busy = stats.dma.busy_cycles as f64;
    let dma = model.dma.leakage * cycles
        + model.dma.transfer * stats.dma.words_transferred as f64
        + model.dma.idle * (cycles - dma_busy).max(0.0);

    let other =
        model.other.leakage * cycles + model.other.active * stats.cluster_active_cycles as f64;

    EnergyBreakdown { pe, fpu, l1, l2, icache, dma, other }
}

/// Renders a per-component breakdown with percentages.
pub fn render_breakdown(e: &EnergyBreakdown) -> String {
    use std::fmt::Write as _;
    let total = e.total().max(f64::MIN_POSITIVE);
    let mut out = String::new();
    let _ = writeln!(out, "{:<8} {:>12} {:>7}", "component", "energy [uJ]", "share");
    for (name, v) in [
        ("PE", e.pe),
        ("FPU", e.fpu),
        ("L1", e.l1),
        ("L2", e.l2),
        ("I$", e.icache),
        ("DMA", e.dma),
        ("other", e.other),
    ] {
        let _ = writeln!(out, "{name:<8} {:>12.4} {:>6.1}%", v * 1e-9, 100.0 * v / total);
    }
    let _ = writeln!(out, "{:<8} {:>12.4}", "total", e.total_uj());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ClusterConfig {
        ClusterConfig::default()
    }

    fn empty_stats(cycles: u64) -> SimStats {
        let c = config();
        let mut s = SimStats::new(c.num_cores, c.tcdm_banks, c.l2_banks);
        s.cycles = cycles;
        for core in &mut s.cores {
            core.cg_cycles = cycles;
        }
        s
    }

    #[test]
    fn zero_cycles_zero_energy() {
        let s = empty_stats(0);
        let e = energy_of(&s, &EnergyModel::table1(), &config());
        assert_eq!(e.total(), 0.0);
    }

    #[test]
    fn idle_cluster_burns_leakage_and_gating() {
        let s = empty_stats(1000);
        let m = EnergyModel::table1();
        let e = energy_of(&s, &m, &config());
        // 8 cores: leakage + cg for every cycle.
        let expected_pe = 8.0 * 1000.0 * (m.pe.leakage + m.pe.cg);
        assert!((e.pe - expected_pe).abs() < 1e-6);
        // All banks idle.
        let expected_l1 = 16.0 * 1000.0 * (m.l1_bank.leakage + m.l1_bank.idle);
        assert!((e.l1 - expected_l1).abs() < 1e-6);
        assert!(e.total() > 0.0);
    }

    #[test]
    fn op_energy_is_additive() {
        let mut s = empty_stats(100);
        s.cores[0].cg_cycles = 0;
        s.cores[0].alu_ops = 50;
        s.cores[0].idle_cycles = 50;
        s.cores[0].fetches = 50;
        s.icache.fetches = 50;
        let m = EnergyModel::table1();
        let base = energy_of(&empty_stats(100), &m, &config());
        let e = energy_of(&s, &m, &config());
        let delta = e.pe - base.pe;
        let expected = 50.0 * m.pe.alu + 50.0 * m.pe.nop - 100.0 * m.pe.cg;
        assert!((delta - expected).abs() < 1e-6, "delta = {delta}, expected = {expected}");
    }

    #[test]
    fn fp_ops_charge_core_and_fpu() {
        let mut s = empty_stats(10);
        s.cores[2].fp_ops = 4;
        let m = EnergyModel::table1();
        let e = energy_of(&s, &m, &config());
        let base = energy_of(&empty_stats(10), &m, &config());
        assert!((e.pe - base.pe - 4.0 * m.pe.fp).abs() < 1e-6);
        assert!((e.fpu - base.fpu - 4.0 * m.fpu.operative).abs() < 1e-6);
    }

    #[test]
    fn breakdown_renders_all_components() {
        let e = EnergyBreakdown {
            pe: 50.0e9,
            fpu: 10.0e9,
            l1: 10.0e9,
            l2: 10.0e9,
            icache: 10.0e9,
            dma: 5.0e9,
            other: 5.0e9,
        };
        let s = render_breakdown(&e);
        assert!(s.contains("PE"));
        assert!(s.contains("50.0%"));
        assert!(s.contains("total"));
        assert_eq!(s.lines().count(), 1 + 7 + 1);
    }

    #[test]
    fn breakdown_total_sums_components() {
        let mut s = empty_stats(10);
        s.l1_banks[3].reads = 7;
        s.dma.words_transferred = 2;
        let e = energy_of(&s, &EnergyModel::table1(), &config());
        let sum = e.pe + e.fpu + e.l1 + e.l2 + e.icache + e.dma + e.other;
        assert!((e.total() - sum).abs() < 1e-9);
        assert!((e.total_uj() - e.total() * 1e-9).abs() < 1e-15);
    }
}

//! Time-resolved power profiling.
//!
//! [`PowerProbe`] is a [`TraceSink`] that buckets the *event* (dynamic)
//! energy of a run into fixed cycle windows while the simulation runs,
//! yielding a power-over-time profile — the simulator-side analogue of the
//! VCD-based power traces the paper's authors extracted with PrimeTime.
//!
//! Event energy covers everything charged per event by the Table-I model
//! (opcodes, bank requests, I-cache fetches, active-wait cycles, DMA
//! words); the per-cycle baseline (leakage + idle of every component) is
//! constant by construction and is added analytically by
//! [`PowerProbe::profile`].

use crate::model::EnergyModel;
use pulp_sim::{ClusterConfig, OpKind, TraceEvent, TraceSink};

/// A trace sink accumulating per-window dynamic energy.
#[derive(Debug, Clone)]
pub struct PowerProbe {
    model: EnergyModel,
    config: ClusterConfig,
    window: u64,
    buckets: Vec<f64>,
    max_cycle: u64,
}

impl PowerProbe {
    /// Creates a probe bucketing energy into windows of `window` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(model: EnergyModel, config: ClusterConfig, window: u64) -> Self {
        assert!(window > 0, "window must be at least one cycle");
        Self {
            model,
            config,
            window,
            buckets: Vec::new(),
            max_cycle: 0,
        }
    }

    fn add(&mut self, cycle: u64, energy: f64) {
        let idx = (cycle / self.window) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0.0);
        }
        self.buckets[idx] += energy;
    }

    /// Per-cycle static baseline implied by the model: leakage of every
    /// component plus the idle draw of memories and DMA.
    pub fn baseline_per_cycle(&self) -> f64 {
        let m = &self.model;
        let c = &self.config;
        m.pe.leakage * c.num_cores as f64
            + m.fpu.leakage * c.num_fpus as f64
            + (m.l1_bank.leakage + m.l1_bank.idle) * c.tcdm_banks as f64
            + (m.l2_bank.leakage + m.l2_bank.idle) * c.l2_banks as f64
            + m.icache.leakage
            + m.dma.leakage
            + m.dma.idle
            + m.other.leakage
    }

    /// Dynamic (event) energy accumulated per window, in femtojoules.
    pub fn dynamic_energy(&self) -> &[f64] {
        &self.buckets
    }

    /// Total dynamic energy observed.
    pub fn dynamic_total(&self) -> f64 {
        self.buckets.iter().sum()
    }

    /// Average power per window in femtojoules/cycle, including the static
    /// baseline. The last window is scaled by its actual width.
    pub fn profile(&self) -> Vec<f64> {
        let base = self.baseline_per_cycle();
        let n = self.buckets.len();
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &e)| {
                let width = if i + 1 == n {
                    let rem = self.max_cycle + 1 - i as u64 * self.window;
                    rem.min(self.window).max(1)
                } else {
                    self.window
                };
                e / width as f64 + base
            })
            .collect()
    }

    fn event_energy(&self, event: &TraceEvent) -> f64 {
        let m = &self.model;
        match event {
            TraceEvent::Insn { kind, addr, .. } => {
                let core_side = match kind {
                    OpKind::Alu | OpKind::Mul | OpKind::Div | OpKind::Branch | OpKind::Jump => {
                        m.pe.alu
                    }
                    OpKind::Fp(_) => m.pe.fp + m.fpu.operative,
                    OpKind::Nop => m.pe.nop,
                    OpKind::Load | OpKind::Store => match addr {
                        Some(a) if self.config.is_tcdm(*a) => m.pe.l1,
                        _ => m.pe.l2,
                    },
                };
                core_side + m.icache.use_
            }
            TraceEvent::Stall { .. } => m.pe.nop,
            // Bank events carry the request energy net of the idle draw
            // already in the baseline.
            TraceEvent::L1Access { write, .. } => {
                (if *write {
                    m.l1_bank.write
                } else {
                    m.l1_bank.read
                }) - m.l1_bank.idle
            }
            TraceEvent::L2Access { write, .. } => {
                (if *write {
                    m.l2_bank.write
                } else {
                    m.l2_bank.read
                }) - m.l2_bank.idle
            }
            TraceEvent::Dma { words, .. } => m.dma.transfer * *words as f64,
            TraceEvent::IcacheRefill { count } => m.icache.refill * *count as f64,
            TraceEvent::L1Conflict { .. }
            | TraceEvent::CgEnter { .. }
            | TraceEvent::CgExit { .. }
            | TraceEvent::BarrierArrive { .. }
            | TraceEvent::BarrierRelease
            | TraceEvent::Fork => 0.0,
        }
    }
}

impl TraceSink for PowerProbe {
    fn emit(&mut self, cycle: u64, event: TraceEvent) {
        self.max_cycle = self.max_cycle.max(cycle);
        let e = self.event_energy(&event);
        if e != 0.0 {
            self.add(cycle, e);
        }
    }
}

/// Renders a power profile as an ASCII bar chart, one line per window.
pub fn render_profile(profile: &[f64], window: u64, width: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let max = profile.iter().cloned().fold(f64::MIN, f64::max);
    if !max.is_finite() || max <= 0.0 {
        return out;
    }
    for (i, &p) in profile.iter().enumerate() {
        let bar = ((p / max) * width as f64).round() as usize;
        let _ = writeln!(
            out,
            "{:>10} {:>9.1} pJ/cy |{}",
            i as u64 * window,
            p * 1e-3,
            "#".repeat(bar)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pulp_sim::{simulate_traced, AddrExpr, Program, SegOp, TCDM_BASE};

    fn run(program: &Program, window: u64) -> PowerProbe {
        let config = ClusterConfig::default();
        let mut probe = PowerProbe::new(EnergyModel::table1(), config.clone(), window);
        simulate_traced(&config, program, 1_000_000, &mut probe).expect("simulate");
        probe
    }

    fn alu_burst(n: u64) -> Vec<SegOp> {
        vec![
            SegOp::LoopBegin { trip: n },
            SegOp::Instr {
                kind: OpKind::Alu,
                addr: None,
            },
            SegOp::LoopEnd,
        ]
    }

    #[test]
    fn dynamic_energy_matches_op_count() {
        let p = Program::new(vec![alu_burst(100)]);
        let probe = run(&p, 16);
        let m = EnergyModel::table1();
        let expected = 100.0 * (m.pe.alu + m.icache.use_) + m.icache.refill * 1.0;
        // Plus the final park cycle(s) contribute nothing dynamic.
        assert!(
            (probe.dynamic_total() - expected).abs() < 1e-6,
            "{} vs {}",
            probe.dynamic_total(),
            expected
        );
    }

    #[test]
    fn profile_shows_activity_then_silence() {
        // A burst of work followed by a long explicit NOP tail would keep
        // power high; instead use a single-op program where later windows
        // exist only through the park cycle.
        let mut stream = alu_burst(64);
        stream.push(SegOp::Instr {
            kind: OpKind::Load,
            addr: Some(AddrExpr::constant(TCDM_BASE)),
        });
        let p = Program::new(vec![stream]);
        let probe = run(&p, 8);
        let profile = probe.profile();
        assert!(profile.len() >= 2);
        // Every window's power is at least the baseline.
        let base = probe.baseline_per_cycle();
        assert!(profile.iter().all(|&p| p >= base - 1e-9));
        // The busy windows sit well above the baseline.
        assert!(
            profile[0] > base * 1.2,
            "first window {} vs base {base}",
            profile[0]
        );
    }

    #[test]
    fn window_zero_is_rejected() {
        let result = std::panic::catch_unwind(|| {
            PowerProbe::new(EnergyModel::table1(), ClusterConfig::default(), 0)
        });
        assert!(result.is_err());
    }

    #[test]
    fn render_produces_one_line_per_window() {
        let p = Program::new(vec![alu_burst(32)]);
        let probe = run(&p, 8);
        let text = render_profile(&probe.profile(), 8, 40);
        assert_eq!(text.lines().count(), probe.profile().len());
        assert!(text.contains('#'));
    }

    #[test]
    fn empty_profile_renders_empty() {
        assert!(render_profile(&[], 8, 40).is_empty());
    }
}

//! The PULP cluster energy model — Table I of the paper.
//!
//! Every constant is in femtojoules and was derived by the paper's authors
//! from post place-and-route power analysis (Synopsys PrimeTime, 0.65 V,
//! parasitic-annotated post-layout simulation of single-instruction-class
//! microbenchmarks). We consume the published numbers directly — exactly
//! what the paper's own trace→energy step does.
//!
//! Leakage entries are charged per component per cycle; operation entries
//! per event (opcode executed, bank request served, line refilled, word
//! transferred); idle entries per component-cycle without activity.

use serde::{Deserialize, Serialize};

/// Energy in femtojoules.
pub type Femtojoules = f64;

/// Processing-element energy coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeEnergy {
    /// Leakage per core per cycle.
    pub leakage: f64,
    /// Active-wait (NOP) cycle.
    pub nop: f64,
    /// Integer ALU opcode.
    pub alu: f64,
    /// Floating-point opcode (core side).
    pub fp: f64,
    /// TCDM access opcode (core side).
    pub l1: f64,
    /// L2 access opcode (core side).
    pub l2: f64,
    /// Clock-gated cycle.
    pub cg: f64,
}

/// Shared-FPU energy coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FpuEnergy {
    /// Leakage per FPU per cycle.
    pub leakage: f64,
    /// Per operation executed.
    pub operative: f64,
    /// Per idle FPU-cycle.
    pub idle: f64,
}

/// Memory-bank energy coefficients (used for both TCDM and L2 banks).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BankEnergy {
    /// Leakage per bank per cycle.
    pub leakage: f64,
    /// Per read request served.
    pub read: f64,
    /// Per write request served.
    pub write: f64,
    /// Per idle bank-cycle.
    pub idle: f64,
}

/// Instruction-cache energy coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IcacheEnergy {
    /// Leakage per cycle.
    pub leakage: f64,
    /// Per fetch served.
    pub use_: f64,
    /// Per line refill.
    pub refill: f64,
}

/// DMA engine energy coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DmaEnergy {
    /// Leakage per cycle.
    pub leakage: f64,
    /// Per word transferred.
    pub transfer: f64,
    /// Per idle cycle.
    pub idle: f64,
}

/// Residual cluster circuitry (cores-to-TCDM interconnect, event unit...).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OtherEnergy {
    /// Leakage per cycle.
    pub leakage: f64,
    /// Per cycle with cluster activity.
    pub active: f64,
}

/// The complete Table-I energy model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Processing elements.
    pub pe: PeEnergy,
    /// Shared FPUs.
    pub fpu: FpuEnergy,
    /// TCDM banks.
    pub l1_bank: BankEnergy,
    /// L2 banks.
    pub l2_bank: BankEnergy,
    /// Shared instruction cache.
    pub icache: IcacheEnergy,
    /// DMA engine.
    pub dma: DmaEnergy,
    /// Other cluster components.
    pub other: OtherEnergy,
}

impl EnergyModel {
    /// The published Table-I coefficients (femtojoules).
    pub const fn table1() -> Self {
        Self {
            pe: PeEnergy {
                leakage: 182.0,
                nop: 1212.0,
                alu: 2558.0,
                fp: 2468.0,
                l1: 3242.0,
                l2: 1011.0,
                cg: 20.0,
            },
            fpu: FpuEnergy {
                leakage: 191.0,
                operative: 299.0,
                idle: 0.0,
            },
            l1_bank: BankEnergy {
                leakage: 49.0,
                read: 2543.0,
                write: 2568.0,
                idle: 64.0,
            },
            l2_bank: BankEnergy {
                leakage: 105.0,
                read: 2942.0,
                write: 3480.0,
                idle: 13.0,
            },
            icache: IcacheEnergy {
                leakage: 774.0,
                use_: 4492.0,
                refill: 5932.0,
            },
            dma: DmaEnergy {
                leakage: 165.0,
                transfer: 1750.0,
                idle: 46.0,
            },
            other: OtherEnergy {
                leakage: 655.0,
                active: 2702.0,
            },
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let m = EnergyModel::table1();
        assert_eq!(m.pe.leakage, 182.0);
        assert_eq!(m.pe.nop, 1212.0);
        assert_eq!(m.pe.alu, 2558.0);
        assert_eq!(m.pe.fp, 2468.0);
        assert_eq!(m.pe.l1, 3242.0);
        assert_eq!(m.pe.l2, 1011.0);
        assert_eq!(m.pe.cg, 20.0);
        assert_eq!(m.fpu.leakage, 191.0);
        assert_eq!(m.fpu.operative, 299.0);
        assert_eq!(m.fpu.idle, 0.0);
        assert_eq!(m.l1_bank.read, 2543.0);
        assert_eq!(m.l1_bank.write, 2568.0);
        assert_eq!(m.l2_bank.read, 2942.0);
        assert_eq!(m.l2_bank.write, 3480.0);
        assert_eq!(m.icache.use_, 4492.0);
        assert_eq!(m.icache.refill, 5932.0);
        assert_eq!(m.dma.transfer, 1750.0);
        assert_eq!(m.other.active, 2702.0);
    }

    #[test]
    fn clock_gating_is_far_cheaper_than_active_wait() {
        let m = EnergyModel::table1();
        assert!(m.pe.cg * 10.0 < m.pe.nop);
    }
}

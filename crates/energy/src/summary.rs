//! Serializable per-run energy summaries.
//!
//! A [`EnergySummary`] condenses one simulated run (one kernel at one team
//! size) into the numbers the labelling pipeline actually consumes: total
//! energy, cycle count and the Table-III dynamic features. The struct is
//! deliberately small and `serde`-round-trippable so sweep results can be
//! persisted — the `pulp-energy` sweep cache stores one summary per team
//! size per sample.

use crate::dynamic_features::DynamicFeatures;
use serde::{Deserialize, Serialize};

/// Condensed result of simulating one kernel at one team size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergySummary {
    /// Team size the run used (1-based core count).
    pub cores: usize,
    /// Total energy of the run in femtojoules.
    pub energy_fj: f64,
    /// Kernel cycles of the run.
    pub cycles: u64,
    /// Table-III dynamic features extracted from the run.
    pub dynamic: DynamicFeatures,
}

impl EnergySummary {
    /// Returns `true` when the summary holds physically meaningful numbers
    /// (finite, non-negative energy and a team size of at least one core).
    pub fn is_plausible(&self) -> bool {
        self.cores >= 1 && self.energy_fj.is_finite() && self.energy_fj >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(cores: usize, energy_fj: f64) -> EnergySummary {
        EnergySummary {
            cores,
            energy_fj,
            cycles: 100,
            dynamic: DynamicFeatures {
                pe_idle: 0.1,
                pe_sleep: 0.2,
                pe_alu: 3.0,
                pe_fp: 4.0,
                pe_l1: 5.0,
                pe_l2: 6.0,
                l1_idle: 7.0,
                l1_read: 8.0,
                l1_write: 9.0,
                l1_conflicts: 10.0,
            },
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let s = summary(4, 1234.5678e6);
        let json = serde_json::to_string(&s).expect("serialise");
        let back: EnergySummary = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(s, back);
    }

    #[test]
    fn plausibility_flags_bad_numbers() {
        assert!(summary(1, 10.0).is_plausible());
        assert!(!summary(0, 10.0).is_plausible());
        assert!(!summary(2, f64::NAN).is_plausible());
        assert!(!summary(2, f64::INFINITY).is_plausible());
        assert!(!summary(2, -1.0).is_plausible());
    }
}

//! Dynamic (profile-based) features — Table III of the paper.
//!
//! Extracted from one simulation run (one kernel at one team size). The
//! full dynamic feature vector of a dataset sample concatenates these over
//! all eight team sizes, which is why Table IV reports importances as
//! `(feature, PEs)` pairs.

use pulp_sim::SimStats;
use serde::{Deserialize, Serialize};

/// Names of the 10 dynamic features, in [`DynamicFeatures::to_vec`] order.
pub const DYNAMIC_FEATURE_NAMES: [&str; 10] = [
    "PE_idle",
    "PE_sleep",
    "PE_alu",
    "PE_fp",
    "PE_l1",
    "PE_l2",
    "L1_idle",
    "L1_read",
    "L1_write",
    "L1_conflicts",
];

/// Table-III dynamic features of one run.
///
/// Fractions (`pe_idle`, `pe_sleep`) are averaged over the *team* cores —
/// the cores actually executing the program — so they describe the code's
/// behaviour rather than the trivially-gated unused silicon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicFeatures {
    /// Fraction of cycles a team core spent in resource contention or in a
    /// multi-cycle instruction.
    pub pe_idle: f64,
    /// Fraction of cycles a team core spent clock-gated.
    pub pe_sleep: f64,
    /// Opcodes using the integer ALU.
    pub pe_alu: f64,
    /// Opcodes using the FPU.
    pub pe_fp: f64,
    /// Opcodes accessing the TCDM.
    pub pe_l1: f64,
    /// Opcodes accessing off-cluster memory.
    pub pe_l2: f64,
    /// TCDM bank idle cycles (summed over banks).
    pub l1_idle: f64,
    /// TCDM read requests.
    pub l1_read: f64,
    /// TCDM write requests.
    pub l1_write: f64,
    /// TCDM same-cycle conflicts.
    pub l1_conflicts: f64,
}

impl DynamicFeatures {
    /// Extracts the features from one run's statistics.
    pub fn extract(stats: &SimStats) -> Self {
        let team = stats.team_size.max(1);
        let denom = (stats.cycles as f64 * team as f64).max(1.0);
        let team_cores = &stats.cores[..team.min(stats.cores.len())];
        let idle: u64 = team_cores.iter().map(|c| c.idle_cycles + c.nop_ops).sum();
        let sleep: u64 = team_cores.iter().map(|c| c.cg_cycles).sum();
        Self {
            pe_idle: idle as f64 / denom,
            pe_sleep: sleep as f64 / denom,
            pe_alu: team_cores.iter().map(|c| c.alu_ops).sum::<u64>() as f64,
            pe_fp: team_cores.iter().map(|c| c.fp_ops).sum::<u64>() as f64,
            pe_l1: team_cores.iter().map(|c| c.l1_ops).sum::<u64>() as f64,
            pe_l2: team_cores.iter().map(|c| c.l2_ops).sum::<u64>() as f64,
            l1_idle: stats.l1_idle_cycles() as f64,
            l1_read: stats.l1_reads() as f64,
            l1_write: stats.l1_writes() as f64,
            l1_conflicts: stats.l1_conflicts() as f64,
        }
    }

    /// Flattens into the 10-element vector matching
    /// [`DYNAMIC_FEATURE_NAMES`].
    pub fn to_vec(&self) -> Vec<f64> {
        vec![
            self.pe_idle,
            self.pe_sleep,
            self.pe_alu,
            self.pe_fp,
            self.pe_l1,
            self.pe_l2,
            self.l1_idle,
            self.l1_read,
            self.l1_write,
            self.l1_conflicts,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_use_team_cores_only() {
        let mut s = SimStats::new(8, 16, 32);
        s.cycles = 100;
        s.team_size = 2;
        s.cores[0].idle_cycles = 10;
        s.cores[1].cg_cycles = 50;
        // Unused cores fully gated; must not dilute the features.
        for c in 2..8 {
            s.cores[c].cg_cycles = 100;
        }
        let f = DynamicFeatures::extract(&s);
        assert!((f.pe_idle - 10.0 / 200.0).abs() < 1e-12);
        assert!((f.pe_sleep - 50.0 / 200.0).abs() < 1e-12);
    }

    #[test]
    fn counts_are_totals() {
        let mut s = SimStats::new(8, 16, 32);
        s.cycles = 10;
        s.team_size = 3;
        s.cores[0].alu_ops = 5;
        s.cores[2].alu_ops = 7;
        s.cores[1].fp_ops = 3;
        s.l1_banks[0].reads = 4;
        s.l1_banks[1].writes = 2;
        s.l1_banks[1].conflicts = 1;
        let f = DynamicFeatures::extract(&s);
        assert_eq!(f.pe_alu, 12.0);
        assert_eq!(f.pe_fp, 3.0);
        assert_eq!(f.l1_read, 4.0);
        assert_eq!(f.l1_write, 2.0);
        assert_eq!(f.l1_conflicts, 1.0);
        assert_eq!(f.l1_idle, 10.0 * 16.0 - 6.0);
    }

    #[test]
    fn vector_matches_names() {
        let s = SimStats::new(8, 16, 32);
        let f = DynamicFeatures::extract(&s);
        assert_eq!(f.to_vec().len(), DYNAMIC_FEATURE_NAMES.len());
    }

    #[test]
    fn zero_cycles_do_not_divide_by_zero() {
        let s = SimStats::new(8, 16, 32);
        let f = DynamicFeatures::extract(&s);
        assert!(f.pe_idle.is_finite());
        assert!(f.pe_sleep.is_finite());
    }
}

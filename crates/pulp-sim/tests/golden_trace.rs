//! Golden-trace snapshot: the exact textual trace of a small fixed program.
//!
//! The trace grammar is a public interface (the energy crate's listener
//! stack parses it); this test freezes it so accidental format or
//! scheduling changes are caught explicitly rather than surfacing as
//! listener mismatches downstream.

use pulp_sim::{
    simulate_traced, AddrExpr, ClusterConfig, OpKind, Program, SegOp, TextSink, TCDM_BASE,
};

#[test]
fn single_core_trace_is_stable() {
    let program = Program::new(vec![vec![
        SegOp::Instr {
            kind: OpKind::Alu,
            addr: None,
        },
        SegOp::Instr {
            kind: OpKind::Load,
            addr: Some(AddrExpr::constant(TCDM_BASE)),
        },
        SegOp::Instr {
            kind: OpKind::Store,
            addr: Some(AddrExpr::constant(TCDM_BASE + 4)),
        },
        SegOp::Instr {
            kind: OpKind::Nop,
            addr: None,
        },
    ]]);
    let mut sink = TextSink::new();
    let stats =
        simulate_traced(&ClusterConfig::default(), &program, 1_000, &mut sink).expect("simulate");

    // The 7 unused physical cores are clock-gated for the whole run and
    // announce it with one enter/exit region each; `cg_enter` carries the
    // cause the whole region's cycles are attributed to.
    let expected = "\
0: cluster/pe0/insn: alu
0: cluster/pe1/trace: cg_enter idle
0: cluster/pe2/trace: cg_enter idle
0: cluster/pe3/trace: cg_enter idle
0: cluster/pe4/trace: cg_enter idle
0: cluster/pe5/trace: cg_enter idle
0: cluster/pe6/trace: cg_enter idle
0: cluster/pe7/trace: cg_enter idle
1: cluster/l1/bank0/trace: read
1: cluster/pe0/insn: lw 0x10000000
2: cluster/l1/bank1/trace: write
2: cluster/pe0/insn: sw 0x10000004
3: cluster/pe0/insn: nop
4: cluster/pe0/trace: cg_enter idle
5: cluster/pe0/trace: cg_exit
5: cluster/pe1/trace: cg_exit
5: cluster/pe2/trace: cg_exit
5: cluster/pe3/trace: cg_exit
5: cluster/pe4/trace: cg_exit
5: cluster/pe5/trace: cg_exit
5: cluster/pe6/trace: cg_exit
5: cluster/pe7/trace: cg_exit
5: cluster/icache: refill 1
";
    assert_eq!(sink.text, expected, "trace format drifted:\n{}", sink.text);
    assert_eq!(stats.cycles, 5);
    assert_eq!(stats.total_retired(), 4);
}

#[test]
fn two_core_trace_interleaves_in_core_order() {
    let alu = SegOp::Instr {
        kind: OpKind::Alu,
        addr: None,
    };
    let program = Program::new(vec![vec![alu.clone()], vec![alu]]);
    let mut sink = TextSink::new();
    simulate_traced(&ClusterConfig::default(), &program, 1_000, &mut sink).expect("simulate");
    let lines: Vec<&str> = sink.text.lines().collect();
    // Cycle 0: both cores retire one ALU op, in core-id order.
    assert_eq!(lines[0], "0: cluster/pe0/insn: alu");
    assert_eq!(lines[1], "0: cluster/pe1/insn: alu");
}

//! Cluster event unit: barriers, parallel-region forks, critical lock.
//!
//! On PULP the event unit implements hardware-accelerated barriers and
//! drives the clock gating of cores sleeping on them. This model keeps the
//! same observable behaviour: cores arriving at a barrier are clock-gated
//! until the last participant arrives; workers waiting for a fork sleep
//! until the master signals the region; a single cluster-wide lock backs
//! `#pragma omp critical`.

/// State of the cluster event unit.
#[derive(Debug, Clone)]
pub struct EventUnit {
    arrived: Vec<bool>,
    arrived_count: usize,
    team: usize,
    /// Monotonic count of forks signalled by the master.
    forks_signalled: u64,
    /// Core currently holding the critical lock.
    lock_holder: Option<usize>,
    /// `Some(n)`: the last core arrived; the release broadcast fires after
    /// `n` more end-of-cycle ticks.
    release_countdown: Option<u32>,
}

impl EventUnit {
    /// Creates an event unit for a team of `team` cores.
    ///
    /// # Panics
    ///
    /// Panics if `team` is zero.
    pub fn new(team: usize) -> Self {
        assert!(team > 0, "team must be non-empty");
        Self {
            arrived: vec![false; team],
            arrived_count: 0,
            team,
            forks_signalled: 0,
            lock_holder: None,
            release_countdown: None,
        }
    }

    /// Arms the release broadcast: it fires after `latency` more
    /// end-of-cycle [`EventUnit::tick_release`] calls.
    pub fn schedule_release(&mut self, latency: u32) {
        self.release_countdown = Some(latency);
    }

    /// End-of-cycle tick of the pending release countdown.
    ///
    /// Returns `true` exactly once per armed release, on the cycle the
    /// broadcast fires (the caller must then wake sleepers and call
    /// [`EventUnit::release_barrier`]).
    pub fn tick_release(&mut self) -> bool {
        match self.release_countdown {
            Some(0) => {
                self.release_countdown = None;
                true
            }
            Some(n) => {
                self.release_countdown = Some(n - 1);
                false
            }
            None => false,
        }
    }

    /// Ticks remaining until the pending release fires (`None` when no
    /// release is armed). This bounds the fast-forward event horizon: the
    /// firing cycle itself must run single-step because it wakes sleepers.
    pub fn release_in(&self) -> Option<u32> {
        self.release_countdown
    }

    /// Bulk-applies `n` end-of-cycle ticks to the pending release countdown
    /// (fast-forward path). `n` must not reach the firing cycle.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `n` exceeds the remaining countdown.
    pub fn skip_release_wait(&mut self, n: u64) {
        if let Some(k) = self.release_countdown {
            debug_assert!(
                n <= u64::from(k),
                "bulk advance of {n} ticks overruns release countdown {k}"
            );
            self.release_countdown = Some(k - n as u32);
        }
    }

    /// Registers `core`'s arrival at the barrier.
    ///
    /// Returns `true` when this arrival completes the barrier (caller must
    /// then [`EventUnit::release_barrier`]).
    ///
    /// # Panics
    ///
    /// Panics if the core already arrived (a core cannot arrive twice at the
    /// same barrier episode).
    pub fn arrive(&mut self, core: usize) -> bool {
        assert!(!self.arrived[core], "core {core} arrived twice");
        self.arrived[core] = true;
        self.arrived_count += 1;
        self.arrived_count == self.team
    }

    /// Resets the barrier for the next episode.
    pub fn release_barrier(&mut self) {
        self.arrived.iter_mut().for_each(|a| *a = false);
        self.arrived_count = 0;
    }

    /// Returns `true` if `core` is currently waiting at the barrier.
    pub fn is_waiting(&self, core: usize) -> bool {
        self.arrived[core]
    }

    /// Signals one fork (master side).
    pub fn signal_fork(&mut self) {
        self.forks_signalled += 1;
    }

    /// Returns `true` if fork number `seq` (0-based) has been signalled.
    pub fn fork_ready(&self, seq: u64) -> bool {
        self.forks_signalled > seq
    }

    /// Attempts to take the critical lock for `core`.
    ///
    /// Returns `true` on acquisition; re-entrant acquisition is a bug and
    /// panics.
    ///
    /// # Panics
    ///
    /// Panics if `core` already holds the lock.
    pub fn try_lock(&mut self, core: usize) -> bool {
        match self.lock_holder {
            None => {
                self.lock_holder = Some(core);
                true
            }
            Some(h) => {
                assert!(h != core, "core {core} re-acquired the critical lock");
                false
            }
        }
    }

    /// Releases the critical lock held by `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` does not hold the lock.
    pub fn unlock(&mut self, core: usize) {
        assert_eq!(
            self.lock_holder,
            Some(core),
            "core {core} released a lock it does not hold"
        );
        self.lock_holder = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_completes_on_last_arrival() {
        let mut eu = EventUnit::new(3);
        assert!(!eu.arrive(0));
        assert!(!eu.arrive(2));
        assert!(eu.is_waiting(0));
        assert!(eu.arrive(1));
        eu.release_barrier();
        assert!(!eu.is_waiting(0));
        // Reusable for the next episode.
        assert!(!eu.arrive(1));
        assert!(!eu.arrive(0));
        assert!(eu.arrive(2));
    }

    #[test]
    #[should_panic(expected = "arrived twice")]
    fn double_arrival_panics() {
        let mut eu = EventUnit::new(2);
        eu.arrive(0);
        eu.arrive(0);
    }

    #[test]
    fn fork_sequencing() {
        let mut eu = EventUnit::new(2);
        assert!(!eu.fork_ready(0));
        eu.signal_fork();
        assert!(eu.fork_ready(0));
        assert!(!eu.fork_ready(1));
        eu.signal_fork();
        assert!(eu.fork_ready(1));
    }

    #[test]
    fn release_countdown_fires_after_latency_ticks() {
        let mut eu = EventUnit::new(2);
        assert!(!eu.tick_release(), "nothing armed");
        eu.schedule_release(2);
        assert_eq!(eu.release_in(), Some(2));
        assert!(!eu.tick_release());
        assert!(!eu.tick_release());
        assert_eq!(eu.release_in(), Some(0));
        assert!(eu.tick_release(), "fires on the zero tick");
        assert_eq!(eu.release_in(), None);
        assert!(!eu.tick_release(), "fires exactly once");
    }

    #[test]
    fn zero_latency_release_fires_on_next_tick() {
        let mut eu = EventUnit::new(2);
        eu.schedule_release(0);
        assert!(eu.tick_release());
    }

    #[test]
    fn skip_release_wait_matches_repeated_ticks() {
        let mut bulk = EventUnit::new(2);
        let mut single = EventUnit::new(2);
        bulk.schedule_release(48);
        single.schedule_release(48);
        bulk.skip_release_wait(40);
        for _ in 0..40 {
            assert!(!single.tick_release());
        }
        assert_eq!(bulk.release_in(), single.release_in());
        // No-op without an armed release.
        let mut idle = EventUnit::new(2);
        idle.skip_release_wait(1_000);
        assert_eq!(idle.release_in(), None);
    }

    #[test]
    fn critical_lock_is_exclusive() {
        let mut eu = EventUnit::new(2);
        assert!(eu.try_lock(0));
        assert!(!eu.try_lock(1));
        eu.unlock(0);
        assert!(eu.try_lock(1));
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn unlock_requires_ownership() {
        let mut eu = EventUnit::new(2);
        assert!(eu.try_lock(0));
        eu.unlock(1);
    }
}

//! Cluster DMA engine model.
//!
//! The paper's dataset deliberately keeps every working set inside the TCDM
//! so that no DMA transfers occur during kernels ("we avoid the need to take
//! into account DMA transfers"), but the engine is part of the platform and
//! its idle/leakage energy is charged for the whole run. The model below
//! also supports explicit transfers, which the paper lists as future work
//! (modelling DMA and the memory hierarchy) — exercised by the
//! `ablation_platform` bench and by examples that stage data from L2.

use serde::{Deserialize, Serialize};

/// Cycles of setup cost per programmed transfer.
pub const DMA_SETUP_CYCLES: u64 = 16;

/// Words moved per cycle once a transfer is streaming (64-bit AXI beat).
pub const DMA_WORDS_PER_CYCLE: u64 = 2;

/// A programmed 1D transfer between L2 and TCDM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaTransfer {
    /// Number of 32-bit words to move.
    pub words: u64,
    /// `true` when moving L2 → TCDM ("in"), `false` for TCDM → L2 ("out").
    pub inbound: bool,
}

impl DmaTransfer {
    /// Creates an inbound (L2 → TCDM) transfer of `words` words.
    pub fn inbound(words: u64) -> Self {
        Self {
            words,
            inbound: true,
        }
    }

    /// Creates an outbound (TCDM → L2) transfer of `words` words.
    pub fn outbound(words: u64) -> Self {
        Self {
            words,
            inbound: false,
        }
    }

    /// Cycles the engine is busy executing this transfer
    /// (`DMA_WORDS_PER_CYCLE` words per cycle after setup).
    pub fn busy_cycles(&self) -> u64 {
        DMA_SETUP_CYCLES + self.words.div_ceil(DMA_WORDS_PER_CYCLE)
    }
}

/// Accumulated DMA activity over a run.
///
/// Besides the activity totals, the engine tracks the absolute cycle at
/// which its current stream of transfers drains ([`DmaEngine::free_at`]).
/// Keeping completion as a cycle *stamp* rather than a per-cycle countdown
/// is what lets the fast-forward path jump the clock over a transfer in one
/// step: nothing in here needs ticking.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaEngine {
    words: u64,
    busy: u64,
    free_at: u64,
}

impl DmaEngine {
    /// Creates an idle engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Executes a transfer to completion, returning the cycles it took.
    ///
    /// Accounting-only entry point; use [`DmaEngine::schedule`] inside the
    /// simulator so completion time is tracked too.
    pub fn run(&mut self, t: DmaTransfer) -> u64 {
        let c = t.busy_cycles();
        self.words += t.words;
        self.busy += c;
        c
    }

    /// Programs `t` at `cycle`, returning the cycles the engine is busy
    /// with it and extending [`DmaEngine::free_at`] past the transfer.
    pub fn schedule(&mut self, cycle: u64, t: DmaTransfer) -> u64 {
        let c = self.run(t);
        self.free_at = self.free_at.max(cycle + c);
        c
    }

    /// First cycle at which every scheduled transfer has drained. A core
    /// parked on `DmaWait` provably spins until this cycle, which is the
    /// DMA contribution to the fast-forward event horizon.
    pub fn free_at(&self) -> u64 {
        self.free_at
    }

    /// Returns `true` while a scheduled transfer is still streaming at
    /// `cycle` (an async issue must retry).
    pub fn busy_at(&self, cycle: u64) -> bool {
        cycle < self.free_at
    }

    /// Total words moved.
    pub fn words_transferred(&self) -> u64 {
        self.words
    }

    /// Total busy cycles.
    pub fn busy_cycles(&self) -> u64 {
        self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_cost_is_setup_plus_beats() {
        let t = DmaTransfer::inbound(128);
        assert_eq!(t.busy_cycles(), DMA_SETUP_CYCLES + 64);
        // Odd word counts round up to a full beat.
        assert_eq!(DmaTransfer::inbound(5).busy_cycles(), DMA_SETUP_CYCLES + 3);
    }

    #[test]
    fn engine_accumulates() {
        let mut e = DmaEngine::new();
        e.run(DmaTransfer::inbound(10));
        e.run(DmaTransfer::outbound(20));
        assert_eq!(e.words_transferred(), 30);
        assert_eq!(e.busy_cycles(), 2 * DMA_SETUP_CYCLES + 15);
    }

    #[test]
    fn schedule_tracks_completion_stamp() {
        let mut e = DmaEngine::new();
        assert!(!e.busy_at(0));
        let busy = e.schedule(100, DmaTransfer::inbound(128));
        assert_eq!(busy, DMA_SETUP_CYCLES + 64);
        assert_eq!(e.free_at(), 100 + busy);
        assert!(e.busy_at(100 + busy - 1));
        assert!(!e.busy_at(100 + busy));
        // Back-to-back scheduling extends rather than rewinds the stamp.
        let earlier = e.schedule(0, DmaTransfer::outbound(2));
        assert!(e.free_at() >= 100 + busy, "stamp rewound by {earlier}");
        assert_eq!(e.words_transferred(), 130);
    }
}

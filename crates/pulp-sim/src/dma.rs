//! Cluster DMA engine model.
//!
//! The paper's dataset deliberately keeps every working set inside the TCDM
//! so that no DMA transfers occur during kernels ("we avoid the need to take
//! into account DMA transfers"), but the engine is part of the platform and
//! its idle/leakage energy is charged for the whole run. The model below
//! also supports explicit transfers, which the paper lists as future work
//! (modelling DMA and the memory hierarchy) — exercised by the
//! `ablation_platform` bench and by examples that stage data from L2.

use serde::{Deserialize, Serialize};

/// Cycles of setup cost per programmed transfer.
pub const DMA_SETUP_CYCLES: u64 = 16;

/// Words moved per cycle once a transfer is streaming (64-bit AXI beat).
pub const DMA_WORDS_PER_CYCLE: u64 = 2;

/// A programmed 1D transfer between L2 and TCDM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaTransfer {
    /// Number of 32-bit words to move.
    pub words: u64,
    /// `true` when moving L2 → TCDM ("in"), `false` for TCDM → L2 ("out").
    pub inbound: bool,
}

impl DmaTransfer {
    /// Creates an inbound (L2 → TCDM) transfer of `words` words.
    pub fn inbound(words: u64) -> Self {
        Self {
            words,
            inbound: true,
        }
    }

    /// Creates an outbound (TCDM → L2) transfer of `words` words.
    pub fn outbound(words: u64) -> Self {
        Self {
            words,
            inbound: false,
        }
    }

    /// Cycles the engine is busy executing this transfer
    /// (`DMA_WORDS_PER_CYCLE` words per cycle after setup).
    pub fn busy_cycles(&self) -> u64 {
        DMA_SETUP_CYCLES + self.words.div_ceil(DMA_WORDS_PER_CYCLE)
    }
}

/// Accumulated DMA activity over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaEngine {
    words: u64,
    busy: u64,
}

impl DmaEngine {
    /// Creates an idle engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Executes a transfer to completion, returning the cycles it took.
    pub fn run(&mut self, t: DmaTransfer) -> u64 {
        let c = t.busy_cycles();
        self.words += t.words;
        self.busy += c;
        c
    }

    /// Total words moved.
    pub fn words_transferred(&self) -> u64 {
        self.words
    }

    /// Total busy cycles.
    pub fn busy_cycles(&self) -> u64 {
        self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_cost_is_setup_plus_beats() {
        let t = DmaTransfer::inbound(128);
        assert_eq!(t.busy_cycles(), DMA_SETUP_CYCLES + 64);
        // Odd word counts round up to a full beat.
        assert_eq!(DmaTransfer::inbound(5).busy_cycles(), DMA_SETUP_CYCLES + 3);
    }

    #[test]
    fn engine_accumulates() {
        let mut e = DmaEngine::new();
        e.run(DmaTransfer::inbound(10));
        e.run(DmaTransfer::outbound(20));
        assert_eq!(e.words_transferred(), 30);
        assert_eq!(e.busy_cycles(), 2 * DMA_SETUP_CYCLES + 15);
    }
}

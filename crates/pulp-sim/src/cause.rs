//! Exclusive cycle-cause taxonomy.
//!
//! Every simulated core cycle is attributed to exactly one [`CycleCause`]:
//! the per-core [`CycleBreakdown`] totals sum to the run's cycle count
//! (checked by `SimStats::check_consistency`). This is the attribution
//! layer the observability stack builds on — the same causes flow through
//! trace lines (`stall <cause>` / `cg_enter <cause>`), the listener
//! reconstruction in the energy crate, and the `Telemetry` hooks.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a core spent one specific cycle the way it did.
///
/// Exactly one cause applies per core per cycle. `Execute` is the only
/// productive cause (one retired op per cycle); the remainder partition the
/// non-retiring cycles by the mechanism responsible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CycleCause {
    /// The core retired a micro-op this cycle.
    Execute,
    /// Tail of a multi-cycle instruction (MUL/DIV latency, taken-branch
    /// penalty, FP pipeline occupancy after issue).
    ExecTail,
    /// Lost TCDM bank arbitration; the access retries next cycle.
    TcdmConflict,
    /// The shared FPU for this core was busy with a partner core's op.
    FpuContention,
    /// Waiting on the L2 port or an in-flight L2 access's latency.
    L2Wait,
    /// Waiting at (or sleeping in) the cluster barrier.
    Barrier,
    /// Worker sleeping until the master signals a fork.
    ForkWait,
    /// OpenMP runtime overhead: master fork sequence, wake dispatch and
    /// critical-section lock spinning.
    Runtime,
    /// Programming, blocking on, or retrying behind the DMA engine.
    Dma,
    /// Parked: the core finished its stream, or is unused by the team.
    Idle,
}

impl CycleCause {
    /// All causes, in [`CycleBreakdown`] field order.
    pub const ALL: [CycleCause; 10] = [
        CycleCause::Execute,
        CycleCause::ExecTail,
        CycleCause::TcdmConflict,
        CycleCause::FpuContention,
        CycleCause::L2Wait,
        CycleCause::Barrier,
        CycleCause::ForkWait,
        CycleCause::Runtime,
        CycleCause::Dma,
        CycleCause::Idle,
    ];

    /// Stable lowercase token used in trace payloads and JSON keys.
    pub fn token(self) -> &'static str {
        match self {
            CycleCause::Execute => "execute",
            CycleCause::ExecTail => "exec_tail",
            CycleCause::TcdmConflict => "tcdm_conflict",
            CycleCause::FpuContention => "fpu_contention",
            CycleCause::L2Wait => "l2_wait",
            CycleCause::Barrier => "barrier",
            CycleCause::ForkWait => "fork_wait",
            CycleCause::Runtime => "runtime",
            CycleCause::Dma => "dma",
            CycleCause::Idle => "idle",
        }
    }

    /// Parses a [`CycleCause::token`] back into a cause.
    pub fn from_token(token: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|c| c.token() == token)
    }
}

impl fmt::Display for CycleCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Per-core cycle counts, one per [`CycleCause`].
///
/// The taxonomy is exclusive and exhaustive: [`CycleBreakdown::total`]
/// equals the run's cycle count for every core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// Cycles retiring a micro-op.
    pub execute: u64,
    /// Multi-cycle instruction tails.
    pub exec_tail: u64,
    /// TCDM bank-conflict retries.
    pub tcdm_conflict: u64,
    /// Shared-FPU arbitration losses.
    pub fpu_contention: u64,
    /// L2 port waits and access latency.
    pub l2_wait: u64,
    /// Barrier arrival and barrier sleep.
    pub barrier: u64,
    /// Fork-wait sleep on worker cores.
    pub fork_wait: u64,
    /// OpenMP runtime overhead (fork sequence, wake dispatch, lock spin).
    pub runtime: u64,
    /// DMA programming/blocking/retry cycles.
    pub dma: u64,
    /// Parked cycles (finished or unused cores).
    pub idle: u64,
}

impl CycleBreakdown {
    /// Adds one cycle to `cause`.
    #[inline]
    pub fn add(&mut self, cause: CycleCause) {
        *self.slot(cause) += 1;
    }

    /// Adds `n` cycles to `cause`.
    #[inline]
    pub fn add_n(&mut self, cause: CycleCause, n: u64) {
        *self.slot(cause) += n;
    }

    /// The count for `cause`.
    pub fn count(&self, cause: CycleCause) -> u64 {
        match cause {
            CycleCause::Execute => self.execute,
            CycleCause::ExecTail => self.exec_tail,
            CycleCause::TcdmConflict => self.tcdm_conflict,
            CycleCause::FpuContention => self.fpu_contention,
            CycleCause::L2Wait => self.l2_wait,
            CycleCause::Barrier => self.barrier,
            CycleCause::ForkWait => self.fork_wait,
            CycleCause::Runtime => self.runtime,
            CycleCause::Dma => self.dma,
            CycleCause::Idle => self.idle,
        }
    }

    fn slot(&mut self, cause: CycleCause) -> &mut u64 {
        match cause {
            CycleCause::Execute => &mut self.execute,
            CycleCause::ExecTail => &mut self.exec_tail,
            CycleCause::TcdmConflict => &mut self.tcdm_conflict,
            CycleCause::FpuContention => &mut self.fpu_contention,
            CycleCause::L2Wait => &mut self.l2_wait,
            CycleCause::Barrier => &mut self.barrier,
            CycleCause::ForkWait => &mut self.fork_wait,
            CycleCause::Runtime => &mut self.runtime,
            CycleCause::Dma => &mut self.dma,
            CycleCause::Idle => &mut self.idle,
        }
    }

    /// Sum over all causes; equals the run's cycle count per core.
    pub fn total(&self) -> u64 {
        CycleCause::ALL.iter().map(|&c| self.count(c)).sum()
    }

    /// `(cause, count)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (CycleCause, u64)> + '_ {
        CycleCause::ALL.into_iter().map(move |c| (c, self.count(c)))
    }

    /// Merges another breakdown into this one (e.g. summing over cores).
    pub fn merge(&mut self, other: &CycleBreakdown) {
        for (cause, n) in other.iter() {
            self.add_n(cause, n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_round_trip() {
        for cause in CycleCause::ALL {
            assert_eq!(CycleCause::from_token(cause.token()), Some(cause));
        }
        assert_eq!(CycleCause::from_token("bogus"), None);
    }

    #[test]
    fn add_and_total_agree() {
        let mut b = CycleBreakdown::default();
        for (i, cause) in CycleCause::ALL.into_iter().enumerate() {
            b.add_n(cause, i as u64 + 1);
        }
        assert_eq!(b.total(), (1..=10).sum::<u64>());
        assert_eq!(b.count(CycleCause::Execute), 1);
        assert_eq!(b.count(CycleCause::Idle), 10);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = CycleBreakdown {
            execute: 3,
            barrier: 2,
            ..Default::default()
        };
        let b = CycleBreakdown {
            execute: 1,
            idle: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.execute, 4);
        assert_eq!(a.barrier, 2);
        assert_eq!(a.idle, 7);
        assert_eq!(a.total(), 13);
    }

    #[test]
    fn iter_is_in_canonical_order() {
        let b = CycleBreakdown::default();
        let causes: Vec<CycleCause> = b.iter().map(|(c, _)| c).collect();
        assert_eq!(causes.as_slice(), &CycleCause::ALL);
    }
}

//! Micro-operation ISA executed by the simulated cores.
//!
//! The simulator does not interpret real RISC-V encodings; it executes a
//! small micro-op alphabet that preserves exactly the distinctions the
//! PULP energy model (Table I of the paper) and the dynamic features
//! (Table III) care about: ALU vs FP vs memory vs control, and which
//! memory level an access touches.

use serde::{Deserialize, Serialize};

/// Classes of floating-point operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FpOp {
    /// Pipelined FP add/sub/compare.
    Add,
    /// Pipelined FP multiply (and fused multiply-add).
    Mul,
    /// Non-pipelined FP divide / square root.
    Div,
}

/// Micro-operation kinds.
///
/// Memory operations carry a byte address; the memory level (TCDM vs L2) is
/// inferred from the address at execution time, mirroring how the paper's
/// trace analyser infers the access level "intercepting the address required
/// by the operation at runtime".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Single-cycle integer ALU operation (add, shift, logic, compare).
    Alu,
    /// Integer multiply.
    Mul,
    /// Multi-cycle integer divide.
    Div,
    /// Floating-point operation executed on a shared FPU.
    Fp(FpOp),
    /// Memory load; level inferred from the address.
    Load,
    /// Memory store; level inferred from the address.
    Store,
    /// Conditional branch (backward loop branches are modelled as taken).
    Branch,
    /// Unconditional jump.
    Jump,
    /// Explicit active-wait cycle.
    Nop,
}

impl OpKind {
    /// Returns `true` for operations dispatched to the shared FPUs.
    #[inline]
    pub fn is_fp(self) -> bool {
        matches!(self, OpKind::Fp(_))
    }

    /// Returns `true` for memory operations.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, OpKind::Load | OpKind::Store)
    }

    /// Returns `true` for control-flow operations.
    #[inline]
    pub fn is_control(self) -> bool {
        matches!(self, OpKind::Branch | OpKind::Jump)
    }

    /// Short lower-case mnemonic used in textual traces.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Alu => "alu",
            OpKind::Mul => "mul",
            OpKind::Div => "div",
            OpKind::Fp(FpOp::Add) => "fadd",
            OpKind::Fp(FpOp::Mul) => "fmul",
            OpKind::Fp(FpOp::Div) => "fdiv",
            OpKind::Load => "lw",
            OpKind::Store => "sw",
            OpKind::Branch => "bne",
            OpKind::Jump => "j",
            OpKind::Nop => "nop",
        }
    }

    /// Parses a mnemonic produced by [`OpKind::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "alu" => OpKind::Alu,
            "mul" => OpKind::Mul,
            "div" => OpKind::Div,
            "fadd" => OpKind::Fp(FpOp::Add),
            "fmul" => OpKind::Fp(FpOp::Mul),
            "fdiv" => OpKind::Fp(FpOp::Div),
            "lw" => OpKind::Load,
            "sw" => OpKind::Store,
            "bne" => OpKind::Branch,
            "j" => OpKind::Jump,
            "nop" => OpKind::Nop,
            _ => return None,
        })
    }
}

/// A fully-resolved micro-operation ready for execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MicroOp {
    /// Operation class.
    pub kind: OpKind,
    /// Byte address for memory operations, `None` otherwise.
    pub addr: Option<u32>,
}

impl MicroOp {
    /// Creates a non-memory micro-op.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is a memory operation (use [`MicroOp::mem`]).
    pub fn op(kind: OpKind) -> Self {
        assert!(!kind.is_mem(), "memory ops need an address");
        Self { kind, addr: None }
    }

    /// Creates a memory micro-op targeting byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not a memory operation.
    pub fn mem(kind: OpKind, addr: u32) -> Self {
        assert!(kind.is_mem(), "only loads/stores carry addresses");
        Self {
            kind,
            addr: Some(addr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_round_trip() {
        let all = [
            OpKind::Alu,
            OpKind::Mul,
            OpKind::Div,
            OpKind::Fp(FpOp::Add),
            OpKind::Fp(FpOp::Mul),
            OpKind::Fp(FpOp::Div),
            OpKind::Load,
            OpKind::Store,
            OpKind::Branch,
            OpKind::Jump,
            OpKind::Nop,
        ];
        for k in all {
            assert_eq!(OpKind::from_mnemonic(k.mnemonic()), Some(k));
        }
        assert_eq!(OpKind::from_mnemonic("bogus"), None);
    }

    #[test]
    fn classification_predicates() {
        assert!(OpKind::Fp(FpOp::Mul).is_fp());
        assert!(!OpKind::Mul.is_fp());
        assert!(OpKind::Load.is_mem());
        assert!(OpKind::Branch.is_control());
        assert!(!OpKind::Alu.is_control());
    }

    #[test]
    #[should_panic(expected = "memory ops need an address")]
    fn op_constructor_rejects_mem() {
        let _ = MicroOp::op(OpKind::Load);
    }

    #[test]
    #[should_panic(expected = "only loads/stores carry addresses")]
    fn mem_constructor_rejects_alu() {
        let _ = MicroOp::mem(OpKind::Alu, 0);
    }
}

//! Shared instruction-cache model.
//!
//! The paper's energy model charges the I-cache per *use* (fetch) and per
//! *refill*. Kernels are small loops, so after the first traversal of each
//! static instruction every fetch hits. The model therefore charges one
//! refill per cache line of static program text per core (cold start) and
//! one use per dynamic fetch.

/// Instructions per I-cache line.
pub const INSNS_PER_LINE: u64 = 4;

/// Computes the number of cold-start refills for a core executing
/// `static_insns` distinct static instructions.
///
/// # Examples
///
/// ```
/// assert_eq!(pulp_sim::icache::refills_for_static_insns(0), 0);
/// assert_eq!(pulp_sim::icache::refills_for_static_insns(1), 1);
/// assert_eq!(pulp_sim::icache::refills_for_static_insns(4), 1);
/// assert_eq!(pulp_sim::icache::refills_for_static_insns(5), 2);
/// ```
pub fn refills_for_static_insns(static_insns: u64) -> u64 {
    static_insns.div_ceil(INSNS_PER_LINE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refills_round_up_to_lines() {
        assert_eq!(refills_for_static_insns(0), 0);
        assert_eq!(refills_for_static_insns(3), 1);
        assert_eq!(refills_for_static_insns(8), 2);
        assert_eq!(refills_for_static_insns(9), 3);
    }
}

//! Per-core programs and their execution cursor.
//!
//! A [`Program`] holds one compact bytecode stream per core. The bytecode
//! encodes loops symbolically (trip count + body) instead of unrolling them,
//! so multi-million-instruction kernels occupy a few kilobytes. Memory
//! operations carry an [`AddrExpr`] — an affine expression over the induction
//! variables of the enclosing loops — which the [`Cursor`] evaluates while
//! walking the loop nest.

use crate::isa::{MicroOp, OpKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Affine byte-address expression over enclosing loop induction variables.
///
/// The address of an access is `base + Σ coeff_d · iv_d`, where `iv_d` is
/// the induction variable of the loop at nesting depth `d` (0 = outermost
/// loop of the core program).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddrExpr {
    /// Base byte address (loop-invariant part).
    pub base: i64,
    /// `(loop depth, coefficient in bytes)` terms.
    pub terms: Vec<(u8, i64)>,
}

impl AddrExpr {
    /// A constant address with no induction-variable terms.
    pub fn constant(base: u32) -> Self {
        Self {
            base: i64::from(base),
            terms: Vec::new(),
        }
    }

    /// Evaluates the expression for the given induction-variable stack.
    ///
    /// # Panics
    ///
    /// Panics if a term references a loop depth deeper than `ivs`, or if the
    /// result does not fit an unsigned 32-bit address.
    #[inline]
    pub fn eval(&self, ivs: &[u64]) -> u32 {
        let mut v = self.base;
        for &(d, c) in &self.terms {
            v += c * ivs[d as usize] as i64;
        }
        debug_assert!(
            (0..=i64::from(u32::MAX)).contains(&v),
            "address out of range: {v}"
        );
        v as u32
    }

    /// Maximum loop depth referenced, or `None` for constant expressions.
    pub fn max_depth(&self) -> Option<u8> {
        self.terms.iter().map(|&(d, _)| d).max()
    }
}

/// One bytecode element of a core program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SegOp {
    /// An executable micro-operation template.
    Instr {
        /// Operation class.
        kind: OpKind,
        /// Address expression for memory operations.
        addr: Option<AddrExpr>,
    },
    /// Begin a counted loop running `trip` iterations of the body.
    LoopBegin {
        /// Number of iterations (zero-trip loops are skipped entirely).
        trip: u64,
    },
    /// End of the innermost open loop body.
    LoopEnd,
    /// Cluster-wide barrier (all cores participate).
    Barrier,
    /// Master-side fork: wake the worker cores for a parallel region.
    Fork,
    /// Worker-side fork wait: sleep (clock-gated) until the master forks.
    WaitFork,
    /// Acquire the cluster critical-section lock (spin if held).
    CriticalBegin,
    /// Release the cluster critical-section lock.
    CriticalEnd,
    /// Program a blocking DMA transfer (master only).
    Dma {
        /// 32-bit words to move.
        words: u64,
        /// `true` for L2 → TCDM.
        inbound: bool,
    },
    /// Program an asynchronous DMA transfer and continue (master only).
    DmaAsync {
        /// 32-bit words to move.
        words: u64,
        /// `true` for L2 → TCDM.
        inbound: bool,
    },
    /// Wait for all outstanding asynchronous DMA transfers.
    DmaWait,
}

/// What the cursor hands to the cluster for the current step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Execute a micro-op.
    Op(MicroOp),
    /// Arrive at the cluster barrier.
    Barrier,
    /// Master fork point.
    Fork,
    /// Worker fork wait.
    WaitFork,
    /// Try to take the critical lock.
    CriticalBegin,
    /// Release the critical lock.
    CriticalEnd,
    /// Program a blocking DMA transfer.
    Dma {
        /// 32-bit words to move.
        words: u64,
        /// `true` for L2 → TCDM.
        inbound: bool,
    },
    /// Program an asynchronous DMA transfer and continue.
    DmaAsync {
        /// 32-bit words to move.
        words: u64,
        /// `true` for L2 → TCDM.
        inbound: bool,
    },
    /// Wait for outstanding asynchronous DMA transfers.
    DmaWait,
    /// Program finished.
    Done,
}

/// Errors produced by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateProgramError {
    /// A `LoopEnd` without a matching `LoopBegin` on core `core` at `pc`.
    UnmatchedLoopEnd {
        /// Core whose program is malformed.
        core: usize,
        /// Bytecode index of the offending element.
        pc: usize,
    },
    /// A `LoopBegin` without a matching `LoopEnd`.
    UnclosedLoop {
        /// Core whose program is malformed.
        core: usize,
        /// Bytecode index of the unclosed `LoopBegin`.
        pc: usize,
    },
    /// An address expression references a loop depth not enclosing it.
    BadAddrDepth {
        /// Core whose program is malformed.
        core: usize,
        /// Bytecode index of the offending instruction.
        pc: usize,
        /// Depth referenced by the expression.
        depth: u8,
        /// Actual nesting depth at that point.
        nesting: usize,
    },
    /// Cores disagree on the sequence of barriers/forks, which would
    /// deadlock the cluster.
    SyncMismatch {
        /// First core whose synchronisation skeleton diverges from core 0's.
        core: usize,
    },
}

impl fmt::Display for ValidateProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnmatchedLoopEnd { core, pc } => {
                write!(f, "core {core}: unmatched LoopEnd at pc {pc}")
            }
            Self::UnclosedLoop { core, pc } => {
                write!(f, "core {core}: LoopBegin at pc {pc} never closed")
            }
            Self::BadAddrDepth {
                core,
                pc,
                depth,
                nesting,
            } => write!(
                f,
                "core {core}: address at pc {pc} references loop depth {depth} \
                 but nesting is only {nesting}"
            ),
            Self::SyncMismatch { core } => {
                write!(f, "core {core}: barrier/fork sequence differs from core 0")
            }
        }
    }
}

impl std::error::Error for ValidateProgramError {}

/// A complete multi-core program: one bytecode stream per core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    streams: Vec<Vec<SegOp>>,
}

impl Program {
    /// Wraps per-core bytecode streams into a program.
    pub fn new(streams: Vec<Vec<SegOp>>) -> Self {
        Self { streams }
    }

    /// Number of core streams.
    pub fn num_cores(&self) -> usize {
        self.streams.len()
    }

    /// The bytecode stream of `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn stream(&self, core: usize) -> &[SegOp] {
        &self.streams[core]
    }

    /// Checks structural well-formedness of every core stream.
    ///
    /// # Errors
    ///
    /// Returns the first structural defect found: unmatched loops, address
    /// expressions referencing non-enclosing loops, or synchronisation
    /// skeletons that differ across cores (which would deadlock).
    pub fn validate(&self) -> Result<(), ValidateProgramError> {
        let mut skeleton0: Vec<u8> = Vec::new();
        for (core, stream) in self.streams.iter().enumerate() {
            let mut depth = 0usize;
            let mut opens: Vec<usize> = Vec::new();
            let mut skeleton: Vec<u8> = Vec::new();
            for (pc, op) in stream.iter().enumerate() {
                match op {
                    SegOp::LoopBegin { .. } => {
                        opens.push(pc);
                        depth += 1;
                    }
                    SegOp::LoopEnd => {
                        if opens.pop().is_none() {
                            return Err(ValidateProgramError::UnmatchedLoopEnd { core, pc });
                        }
                        depth -= 1;
                    }
                    SegOp::Instr { addr: Some(a), .. } => {
                        if let Some(d) = a.max_depth() {
                            if usize::from(d) >= depth {
                                return Err(ValidateProgramError::BadAddrDepth {
                                    core,
                                    pc,
                                    depth: d,
                                    nesting: depth,
                                });
                            }
                        }
                    }
                    SegOp::Barrier => skeleton.push(b'B'),
                    SegOp::Fork | SegOp::WaitFork => skeleton.push(b'F'),
                    _ => {}
                }
            }
            if let Some(&pc) = opens.first() {
                return Err(ValidateProgramError::UnclosedLoop { core, pc });
            }
            if core == 0 {
                skeleton0 = skeleton;
            } else if skeleton != skeleton0 {
                return Err(ValidateProgramError::SyncMismatch { core });
            }
        }
        Ok(())
    }

    /// Total number of dynamic micro-ops the program will execute,
    /// accounting for loop trip counts (synchronisation steps excluded).
    pub fn dynamic_op_count(&self) -> u64 {
        self.streams.iter().map(|s| Self::count_stream(s)).sum()
    }

    /// Dynamic micro-op count of a single core stream.
    pub fn dynamic_op_count_of(&self, core: usize) -> u64 {
        Self::count_stream(&self.streams[core])
    }

    /// Renders the program as a human-readable per-core listing.
    ///
    /// Loops are shown symbolically with their trip counts; address
    /// expressions keep their affine form (`base + c*iv<d>`).
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (core, stream) in self.streams.iter().enumerate() {
            let _ = writeln!(out, "core {core}: ({} static ops)", stream.len());
            let mut depth = 1usize;
            for (pc, op) in stream.iter().enumerate() {
                if matches!(op, SegOp::LoopEnd) {
                    depth = depth.saturating_sub(1);
                }
                let pad = "  ".repeat(depth);
                let _ = write!(out, "{pc:>5}{pad}");
                match op {
                    SegOp::Instr { kind, addr } => {
                        let _ = write!(out, "{}", kind.mnemonic());
                        if let Some(a) = addr {
                            let _ = write!(out, " [{:#x}", a.base);
                            for (d, c) in &a.terms {
                                let _ = write!(out, " + {c}*iv{d}");
                            }
                            let _ = write!(out, "]");
                        }
                    }
                    SegOp::LoopBegin { trip } => {
                        let _ = write!(out, "loop x{trip} {{");
                        depth += 1;
                    }
                    SegOp::LoopEnd => {
                        let _ = write!(out, "}}");
                    }
                    SegOp::Barrier => {
                        let _ = write!(out, "barrier");
                    }
                    SegOp::Fork => {
                        let _ = write!(out, "fork");
                    }
                    SegOp::WaitFork => {
                        let _ = write!(out, "wait_fork");
                    }
                    SegOp::CriticalBegin => {
                        let _ = write!(out, "critical_begin");
                    }
                    SegOp::CriticalEnd => {
                        let _ = write!(out, "critical_end");
                    }
                    SegOp::Dma { words, inbound } => {
                        let dir = if *inbound { "in" } else { "out" };
                        let _ = write!(out, "dma.{dir} {words} words");
                    }
                    SegOp::DmaAsync { words, inbound } => {
                        let dir = if *inbound { "in" } else { "out" };
                        let _ = write!(out, "dma.{dir}.async {words} words");
                    }
                    SegOp::DmaWait => {
                        let _ = write!(out, "dma.wait");
                    }
                }
                out.push('\n');
            }
        }
        out
    }

    fn count_stream(stream: &[SegOp]) -> u64 {
        // Multiplier stack: product of enclosing trip counts.
        let mut mult: Vec<u64> = vec![1];
        let mut total = 0u64;
        for op in stream {
            match op {
                SegOp::LoopBegin { trip } => {
                    let m = mult.last().copied().unwrap_or(1);
                    mult.push(m.saturating_mul(*trip));
                }
                SegOp::LoopEnd => {
                    mult.pop();
                }
                SegOp::Instr { .. } => {
                    total += mult.last().copied().unwrap_or(1);
                }
                _ => {}
            }
        }
        total
    }
}

/// Interpreter state walking one core's bytecode.
///
/// The cursor yields [`Step`]s one at a time; the cluster decides how many
/// cycles each step costs. `advance` must be called exactly once after each
/// yielded step that completed (memory grants, lock acquisition etc. may
/// retry the same step across cycles by simply not advancing).
#[derive(Debug, Clone)]
pub struct Cursor<'p> {
    stream: &'p [SegOp],
    /// Matching LoopEnd index for each LoopBegin (and vice versa).
    matches: Vec<usize>,
    pc: usize,
    /// `(loop begin pc, remaining iterations, iv value)` frames.
    frames: Vec<Frame>,
    ivs: Vec<u64>,
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    begin_pc: usize,
    remaining: u64,
}

impl<'p> Cursor<'p> {
    /// Creates a cursor over `core`'s stream of `program`.
    ///
    /// # Panics
    ///
    /// Panics if the stream has unmatched loop delimiters (call
    /// [`Program::validate`] first to get a proper error).
    pub fn new(program: &'p Program, core: usize) -> Self {
        let stream = program.stream(core);
        let mut matches = vec![usize::MAX; stream.len()];
        let mut stack = Vec::new();
        for (pc, op) in stream.iter().enumerate() {
            match op {
                SegOp::LoopBegin { .. } => stack.push(pc),
                SegOp::LoopEnd => {
                    let b = stack.pop().expect("unmatched LoopEnd");
                    matches[b] = pc;
                    matches[pc] = b;
                }
                _ => {}
            }
        }
        assert!(stack.is_empty(), "unclosed LoopBegin");
        Self {
            stream,
            matches,
            pc: 0,
            frames: Vec::new(),
            ivs: Vec::new(),
        }
    }

    /// Folds loop bookkeeping (entering loops, iterating, popping finished
    /// frames) until the cursor rests on a yieldable op, and returns it
    /// (`None` once the stream is exhausted). Frame mutations only happen
    /// while the pc sits on a `LoopBegin`/`LoopEnd` marker, so once resolved
    /// the call is idempotent until the next [`Cursor::advance`].
    #[inline]
    fn resolve(&mut self) -> Option<&'p SegOp> {
        let stream = self.stream;
        loop {
            let op = stream.get(self.pc)?;
            match op {
                SegOp::LoopBegin { trip } => {
                    if *trip == 0 {
                        // Skip the whole body.
                        self.pc = self.matches[self.pc] + 1;
                    } else {
                        self.frames.push(Frame {
                            begin_pc: self.pc,
                            remaining: *trip,
                        });
                        self.ivs.push(0);
                        self.pc += 1;
                    }
                }
                SegOp::LoopEnd => {
                    let f = self.frames.last_mut().expect("cursor: dangling LoopEnd");
                    f.remaining -= 1;
                    if f.remaining == 0 {
                        self.frames.pop();
                        self.ivs.pop();
                        self.pc += 1;
                    } else {
                        *self.ivs.last_mut().expect("iv stack") += 1;
                        self.pc = f.begin_pc + 1;
                    }
                }
                _ => return Some(op),
            }
        }
    }

    /// Returns the step at the current position without consuming it.
    pub fn current(&mut self) -> Step {
        let Some(op) = self.resolve() else {
            return Step::Done;
        };
        match op {
            SegOp::Instr { kind, addr } => {
                let a = addr.as_ref().map(|e| e.eval(&self.ivs));
                Step::Op(MicroOp {
                    kind: *kind,
                    addr: a,
                })
            }
            SegOp::Barrier => Step::Barrier,
            SegOp::Fork => Step::Fork,
            SegOp::WaitFork => Step::WaitFork,
            SegOp::CriticalBegin => Step::CriticalBegin,
            SegOp::CriticalEnd => Step::CriticalEnd,
            SegOp::Dma { words, inbound } => Step::Dma {
                words: *words,
                inbound: *inbound,
            },
            SegOp::DmaAsync { words, inbound } => Step::DmaAsync {
                words: *words,
                inbound: *inbound,
            },
            SegOp::DmaWait => Step::DmaWait,
            SegOp::LoopBegin { .. } | SegOp::LoopEnd => unreachable!("resolve() folds loops"),
        }
    }

    /// Whether the next yieldable step is [`Step::DmaWait`], without
    /// evaluating address expressions.
    ///
    /// This is the cheap probe behind the adaptive horizon scan: a core in
    /// `Ready` mode counts as "immediately runnable" — pinning the event
    /// horizon to 1 — *except* when it is parked on `DmaWait`, which can
    /// quiesce for the whole DMA drain. The hot loop calls this on every
    /// transition into `Ready`, so it must stay cheaper than
    /// [`Cursor::current`] (no `MicroOp` construction, no `AddrExpr` eval).
    #[inline]
    pub fn next_is_dma_wait(&mut self) -> bool {
        matches!(self.resolve(), Some(SegOp::DmaWait))
    }

    /// Consumes the current step, moving to the next one.
    pub fn advance(&mut self) {
        if self.pc < self.stream.len() {
            self.pc += 1;
        }
    }

    /// Returns `true` once the stream is exhausted.
    pub fn is_done(&mut self) -> bool {
        matches!(self.current(), Step::Done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::OpKind;

    fn instr(kind: OpKind) -> SegOp {
        SegOp::Instr { kind, addr: None }
    }

    fn drain(program: &Program, core: usize) -> Vec<Step> {
        let mut c = Cursor::new(program, core);
        let mut out = Vec::new();
        loop {
            let s = c.current();
            if s == Step::Done {
                break;
            }
            out.push(s);
            c.advance();
        }
        out
    }

    #[test]
    fn straight_line_stream() {
        let p = Program::new(vec![vec![instr(OpKind::Alu), instr(OpKind::Nop)]]);
        let steps = drain(&p, 0);
        assert_eq!(steps.len(), 2);
        assert_eq!(
            steps[0],
            Step::Op(MicroOp {
                kind: OpKind::Alu,
                addr: None
            })
        );
    }

    #[test]
    fn loop_repeats_body() {
        let p = Program::new(vec![vec![
            SegOp::LoopBegin { trip: 3 },
            instr(OpKind::Alu),
            SegOp::LoopEnd,
        ]]);
        assert_eq!(drain(&p, 0).len(), 3);
        assert_eq!(p.dynamic_op_count(), 3);
    }

    #[test]
    fn zero_trip_loop_is_skipped() {
        let p = Program::new(vec![vec![
            SegOp::LoopBegin { trip: 0 },
            instr(OpKind::Alu),
            SegOp::LoopEnd,
            instr(OpKind::Nop),
        ]]);
        let steps = drain(&p, 0);
        assert_eq!(
            steps,
            vec![Step::Op(MicroOp {
                kind: OpKind::Nop,
                addr: None
            })]
        );
    }

    #[test]
    fn nested_loops_multiply() {
        let p = Program::new(vec![vec![
            SegOp::LoopBegin { trip: 4 },
            SegOp::LoopBegin { trip: 5 },
            instr(OpKind::Alu),
            SegOp::LoopEnd,
            SegOp::LoopEnd,
        ]]);
        assert_eq!(drain(&p, 0).len(), 20);
        assert_eq!(p.dynamic_op_count(), 20);
    }

    #[test]
    fn addr_expr_tracks_ivs() {
        // for i in 0..2 { for j in 0..3 { load base + 12*i + 4*j } }
        let p = Program::new(vec![vec![
            SegOp::LoopBegin { trip: 2 },
            SegOp::LoopBegin { trip: 3 },
            SegOp::Instr {
                kind: OpKind::Load,
                addr: Some(AddrExpr {
                    base: 100,
                    terms: vec![(0, 12), (1, 4)],
                }),
            },
            SegOp::LoopEnd,
            SegOp::LoopEnd,
        ]]);
        let addrs: Vec<u32> = drain(&p, 0)
            .into_iter()
            .map(|s| match s {
                Step::Op(MicroOp { addr: Some(a), .. }) => a,
                other => panic!("unexpected step {other:?}"),
            })
            .collect();
        assert_eq!(addrs, vec![100, 104, 108, 112, 116, 120]);
    }

    #[test]
    fn validate_catches_unmatched_end() {
        let p = Program::new(vec![vec![SegOp::LoopEnd]]);
        assert!(matches!(
            p.validate(),
            Err(ValidateProgramError::UnmatchedLoopEnd { core: 0, pc: 0 })
        ));
    }

    #[test]
    fn validate_catches_unclosed_loop() {
        let p = Program::new(vec![vec![SegOp::LoopBegin { trip: 1 }]]);
        assert!(matches!(
            p.validate(),
            Err(ValidateProgramError::UnclosedLoop { .. })
        ));
    }

    #[test]
    fn validate_catches_bad_addr_depth() {
        let p = Program::new(vec![vec![SegOp::Instr {
            kind: OpKind::Load,
            addr: Some(AddrExpr {
                base: 0,
                terms: vec![(0, 4)],
            }),
        }]]);
        assert!(matches!(
            p.validate(),
            Err(ValidateProgramError::BadAddrDepth { .. })
        ));
    }

    #[test]
    fn validate_catches_sync_mismatch() {
        let p = Program::new(vec![vec![SegOp::Barrier], vec![]]);
        assert!(matches!(
            p.validate(),
            Err(ValidateProgramError::SyncMismatch { core: 1 })
        ));
    }

    #[test]
    fn disassembly_lists_all_ops() {
        let p = Program::new(vec![vec![
            SegOp::Fork,
            SegOp::LoopBegin { trip: 4 },
            SegOp::Instr {
                kind: OpKind::Load,
                addr: Some(AddrExpr {
                    base: 0x1000_0000,
                    terms: vec![(0, 4)],
                }),
            },
            SegOp::LoopEnd,
            SegOp::Barrier,
        ]]);
        let text = p.disassemble();
        assert!(text.contains("core 0"));
        assert!(text.contains("loop x4 {"));
        assert!(text.contains("lw [0x10000000 + 4*iv0]"));
        assert!(text.contains("barrier"));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }

    #[test]
    fn next_is_dma_wait_resolves_loops_without_consuming() {
        // A zero-trip loop immediately followed by DmaWait: the probe must
        // fold the loop bookkeeping exactly like `current()` would.
        let p = Program::new(vec![vec![
            SegOp::LoopBegin { trip: 0 },
            instr(OpKind::Alu),
            SegOp::LoopEnd,
            SegOp::DmaWait,
            instr(OpKind::Nop),
        ]]);
        let mut c = Cursor::new(&p, 0);
        assert!(c.next_is_dma_wait());
        // Idempotent, and agrees with `current()`.
        assert!(c.next_is_dma_wait());
        assert_eq!(c.current(), Step::DmaWait);
        c.advance();
        assert!(!c.next_is_dma_wait());
        assert!(matches!(c.current(), Step::Op(_)));
        c.advance();
        assert!(!c.next_is_dma_wait());
        assert!(c.is_done());
    }

    #[test]
    fn validate_accepts_matching_sync() {
        let p = Program::new(vec![
            vec![SegOp::Fork, instr(OpKind::Alu), SegOp::Barrier],
            vec![SegOp::WaitFork, SegOp::Barrier],
        ]);
        assert!(p.validate().is_ok());
    }
}

//! Execution statistics collected by the cluster simulator.
//!
//! [`SimStats`] is the fast-path equivalent of the paper's GVSOC trace: it
//! holds exactly the activity counters that the Table-I energy model and the
//! Table-III dynamic features consume. The slow path (textual trace +
//! listeners, in the `pulp-energy-model` crate) reconstructs the same
//! counters from trace lines; tests assert both paths agree.

use crate::cause::CycleBreakdown;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-core activity counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Retired integer-pipeline ops (ALU, MUL, DIV, branches, jumps).
    pub alu_ops: u64,
    /// Retired floating-point ops.
    pub fp_ops: u64,
    /// Retired loads/stores hitting the TCDM.
    pub l1_ops: u64,
    /// Retired loads/stores hitting the L2.
    pub l2_ops: u64,
    /// Explicit NOP ops retired.
    pub nop_ops: u64,
    /// Active-wait cycles: resource contention, multi-cycle instruction
    /// tails, critical-section spinning and runtime fork overhead.
    pub idle_cycles: u64,
    /// Cycles spent clock-gated (barrier sleep, fork wait, post-completion).
    pub cg_cycles: u64,
    /// Instruction fetches issued (one per retired op).
    pub fetches: u64,
    /// Exclusive per-cause attribution of every cycle; totals to the run's
    /// cycle count.
    pub breakdown: CycleBreakdown,
}

impl CoreStats {
    /// Total retired micro-ops.
    pub fn retired(&self) -> u64 {
        self.alu_ops + self.fp_ops + self.l1_ops + self.l2_ops + self.nop_ops
    }

    /// Cycles charged at the NOP (active-wait) energy cost.
    pub fn active_wait_cycles(&self) -> u64 {
        self.idle_cycles + self.nop_ops
    }
}

/// Per-TCDM-bank activity counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankStats {
    /// Read requests served.
    pub reads: u64,
    /// Write requests served.
    pub writes: u64,
    /// Requests deferred because the bank was already granted this cycle.
    pub conflicts: u64,
}

impl BankStats {
    /// Cycles in which the bank served a request.
    pub fn busy_cycles(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Instruction-cache activity counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IcacheStats {
    /// Fetch accesses (one per retired instruction).
    pub fetches: u64,
    /// Line refills (first touch of each static instruction line per core).
    pub refills: u64,
}

/// DMA engine activity counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaStats {
    /// Words moved between L2 and TCDM.
    pub words_transferred: u64,
    /// Cycles the engine spent moving data.
    pub busy_cycles: u64,
}

/// Event-horizon fast-forward accounting.
///
/// Diagnostic counters describing *how* the simulator advanced, not *what*
/// it simulated: every architectural counter in [`SimStats`] is bit-identical
/// whether a run fast-forwards or single-steps. All fields are zero when
/// fast-forward is disabled. When comparing a fast-forward run against the
/// single-step oracle, compare [`SimStats::without_fast_forward`] copies.
///
/// The horizon-overhead fields attribute where the simulator's own wall
/// time goes: `horizon_computations`/`horizon_skips` count how often the
/// horizon scan ran and how often it paid off, and the two `*_nanos` fields
/// split wall time between scanning and stepping. The nano fields stay zero
/// unless [`crate::SimOptions::horizon_timing`] is set — clock reads
/// perturb throughput runs, so timing is an explicit diagnostic mode, and
/// the split is *sampled* (one clocked event in 32, scaled to the full
/// event count) so the timers themselves stay out of the measurement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FastForwardStats {
    /// Bulk-advance spans taken (each replaces >= 2 single-step iterations).
    pub spans: u64,
    /// Cycles advanced inside bulk spans.
    pub skipped_cycles: u64,
    /// Horizon scans performed. With adaptive scanning (the default) this
    /// is only the iterations where a quiescent span was possible; with
    /// [`crate::SimOptions::adaptive_scan`] off it is one per loop
    /// iteration. Defaults when absent in serialised records.
    #[serde(default)]
    pub horizon_computations: u64,
    /// Horizon scans that yielded a skip (horizon > 1, so a bulk advance
    /// replaced the iteration). Defaults when absent.
    #[serde(default)]
    pub horizon_skips: u64,
    /// Wall time spent inside the horizon scan, in nanoseconds. Zero
    /// unless timing was requested. Defaults when absent.
    #[serde(default)]
    pub horizon_scan_nanos: u64,
    /// Wall time spent in stepped (non-skipped) loop iterations, in
    /// nanoseconds. Zero unless timing was requested. Defaults when absent.
    #[serde(default)]
    pub step_nanos: u64,
}

impl FastForwardStats {
    /// Fraction of horizon scans that yielded a skip (0.0 when none ran).
    pub fn horizon_hit_rate(&self) -> f64 {
        if self.horizon_computations == 0 {
            0.0
        } else {
            self.horizon_skips as f64 / self.horizon_computations as f64
        }
    }

    /// Share of measured wall time spent scanning for the horizon rather
    /// than stepping (0.0 when timing was off or nothing was measured).
    pub fn horizon_scan_share(&self) -> f64 {
        let total = self.horizon_scan_nanos + self.step_nanos;
        if total == 0 {
            0.0
        } else {
            self.horizon_scan_nanos as f64 / total as f64
        }
    }
}

/// Complete statistics of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    /// Total kernel cycles.
    pub cycles: u64,
    /// Team size the kernel was run with (cores executing the program).
    pub team_size: usize,
    /// Per-core counters, indexed by physical core id (length = cluster
    /// cores, including unused clock-gated cores).
    pub cores: Vec<CoreStats>,
    /// Per-TCDM-bank counters.
    pub l1_banks: Vec<BankStats>,
    /// Per-L2-bank counters.
    pub l2_banks: Vec<BankStats>,
    /// Shared instruction cache counters.
    pub icache: IcacheStats,
    /// DMA counters (zero for the paper's dataset, which keeps all data in
    /// TCDM).
    pub dma: DmaStats,
    /// Barrier episodes completed.
    pub barriers: u64,
    /// Cycles during which at least one core was active (not clock-gated).
    pub cluster_active_cycles: u64,
    /// Fast-forward diagnostics (see [`FastForwardStats`]); defaults when
    /// absent so records serialised before this field deserialise cleanly.
    #[serde(default)]
    pub fast_forward: FastForwardStats,
}

impl SimStats {
    /// Creates zeroed statistics for a cluster shape.
    pub fn new(num_cores: usize, l1_banks: usize, l2_banks: usize) -> Self {
        Self {
            cycles: 0,
            team_size: 0,
            cores: vec![CoreStats::default(); num_cores],
            l1_banks: vec![BankStats::default(); l1_banks],
            l2_banks: vec![BankStats::default(); l2_banks],
            icache: IcacheStats::default(),
            dma: DmaStats::default(),
            barriers: 0,
            cluster_active_cycles: 0,
            fast_forward: FastForwardStats::default(),
        }
    }

    /// Fraction of the run's cycles advanced in bulk by the fast-forward
    /// (0.0 for a single-step run or an empty run).
    pub fn skip_ratio(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.fast_forward.skipped_cycles as f64 / self.cycles as f64
        }
    }

    /// A copy with the [`FastForwardStats`] diagnostics cleared, for
    /// bit-identity comparisons against the single-step oracle.
    pub fn without_fast_forward(&self) -> SimStats {
        let mut s = self.clone();
        s.fast_forward = FastForwardStats::default();
        s
    }

    /// Total retired micro-ops across all cores.
    pub fn total_retired(&self) -> u64 {
        self.cores.iter().map(CoreStats::retired).sum()
    }

    /// Total TCDM reads across banks.
    pub fn l1_reads(&self) -> u64 {
        self.l1_banks.iter().map(|b| b.reads).sum()
    }

    /// Total TCDM writes across banks.
    pub fn l1_writes(&self) -> u64 {
        self.l1_banks.iter().map(|b| b.writes).sum()
    }

    /// Total TCDM bank conflicts.
    pub fn l1_conflicts(&self) -> u64 {
        self.l1_banks.iter().map(|b| b.conflicts).sum()
    }

    /// Sum over banks of cycles with no request served.
    pub fn l1_idle_cycles(&self) -> u64 {
        let busy: u64 = self.l1_banks.iter().map(BankStats::busy_cycles).sum();
        (self.cycles * self.l1_banks.len() as u64).saturating_sub(busy)
    }

    /// Sum over L2 banks of cycles with no request served.
    pub fn l2_idle_cycles(&self) -> u64 {
        let busy: u64 = self.l2_banks.iter().map(BankStats::busy_cycles).sum();
        (self.cycles * self.l2_banks.len() as u64).saturating_sub(busy)
    }

    /// Internal consistency checks; used by tests and debug assertions.
    ///
    /// Verifies that per-core cycle decompositions sum to the total cycle
    /// count and that fetch counts match retirements.
    pub fn check_consistency(&self) -> Result<(), String> {
        for (id, c) in self.cores.iter().enumerate() {
            let accounted = c.retired() + c.idle_cycles + c.cg_cycles;
            // Every cycle a core is either retiring (1 cycle per retired op),
            // actively waiting, or clock-gated.
            if accounted != self.cycles {
                return Err(format!(
                    "core {id}: accounted {accounted} cycles of {}",
                    self.cycles
                ));
            }
            if c.fetches != c.retired() {
                return Err(format!(
                    "core {id}: {} fetches but {} retired ops",
                    c.fetches,
                    c.retired()
                ));
            }
            // The cause taxonomy is exclusive and exhaustive: every cycle
            // carries exactly one cause, and Execute cycles are exactly the
            // retiring ones.
            if c.breakdown.total() != self.cycles {
                return Err(format!(
                    "core {id}: cause breakdown covers {} cycles of {}",
                    c.breakdown.total(),
                    self.cycles
                ));
            }
            if c.breakdown.execute != c.retired() {
                return Err(format!(
                    "core {id}: {} execute cycles but {} retired ops",
                    c.breakdown.execute,
                    c.retired()
                ));
            }
        }
        let fetches: u64 = self.cores.iter().map(|c| c.fetches).sum();
        if self.icache.fetches != fetches {
            return Err(format!(
                "icache fetches {} != core fetches {fetches}",
                self.icache.fetches
            ));
        }
        Ok(())
    }

    /// Cause breakdown summed over all cores.
    pub fn breakdown_totals(&self) -> CycleBreakdown {
        let mut total = CycleBreakdown::default();
        for c in &self.cores {
            total.merge(&c.breakdown);
        }
        total
    }

    /// A human-readable per-core summary table (retired ops, stall-cause
    /// breakdown and clock-gating share). Render it with `Display`.
    pub fn summary(&self) -> SimStatsSummary<'_> {
        SimStatsSummary { stats: self }
    }
}

/// Display adapter produced by [`SimStats::summary`].
#[derive(Debug, Clone, Copy)]
pub struct SimStatsSummary<'a> {
    stats: &'a SimStats,
}

impl fmt::Display for SimStatsSummary<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats;
        writeln!(
            f,
            "run: {} cycles, team {} of {} cores, {} barriers, {} active cycles",
            s.cycles,
            s.team_size,
            s.cores.len(),
            s.barriers,
            s.cluster_active_cycles
        )?;
        writeln!(
            f,
            "{:<6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7}",
            "core",
            "retired",
            "exec_tl",
            "tcdm",
            "fpu",
            "l2",
            "barrier",
            "fork",
            "runtime",
            "dma",
            "idle",
            "cg%"
        )?;
        for (id, c) in s.cores.iter().enumerate() {
            let b = &c.breakdown;
            let cg_share = if s.cycles == 0 {
                0.0
            } else {
                100.0 * c.cg_cycles as f64 / s.cycles as f64
            };
            writeln!(
                f,
                "pe{id:<4} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {cg_share:>6.1}%",
                c.retired(),
                b.exec_tail,
                b.tcdm_conflict,
                b.fpu_contention,
                b.l2_wait,
                b.barrier,
                b.fork_wait,
                b.runtime,
                b.dma,
                b.idle,
            )?;
        }
        let totals = s.breakdown_totals();
        writeln!(
            f,
            "total  {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            totals.execute,
            totals.exec_tail,
            totals.tcdm_conflict,
            totals.fpu_contention,
            totals.l2_wait,
            totals.barrier,
            totals.fork_wait,
            totals.runtime,
            totals.dma,
            totals.idle,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_stats_are_consistent() {
        let s = SimStats::new(8, 16, 32);
        assert_eq!(s.cores.len(), 8);
        assert_eq!(s.l1_banks.len(), 16);
        assert!(s.check_consistency().is_ok());
        assert_eq!(s.l1_idle_cycles(), 0);
    }

    #[test]
    fn idle_cycles_complement_busy() {
        let mut s = SimStats::new(1, 2, 1);
        s.cycles = 10;
        s.l1_banks[0].reads = 3;
        s.l1_banks[1].writes = 4;
        assert_eq!(s.l1_idle_cycles(), 20 - 7);
    }

    #[test]
    fn consistency_catches_cycle_mismatch() {
        let mut s = SimStats::new(1, 1, 1);
        s.cycles = 5;
        s.cores[0].alu_ops = 2;
        s.cores[0].fetches = 2;
        s.cores[0].breakdown.execute = 2;
        s.cores[0].breakdown.barrier = 3;
        s.icache.fetches = 2;
        // 2 retired + 0 idle + 0 cg != 5 cycles
        assert!(s.check_consistency().is_err());
        s.cores[0].cg_cycles = 3;
        assert!(s.check_consistency().is_ok());
    }

    #[test]
    fn consistency_catches_breakdown_mismatch() {
        let mut s = SimStats::new(1, 1, 1);
        s.cycles = 3;
        s.cores[0].alu_ops = 1;
        s.cores[0].fetches = 1;
        s.cores[0].cg_cycles = 2;
        s.icache.fetches = 1;
        // Old counters balance, but the cause taxonomy is incomplete.
        s.cores[0].breakdown.execute = 1;
        assert!(s.check_consistency().is_err());
        s.cores[0].breakdown.barrier = 2;
        assert!(s.check_consistency().is_ok());
        // Execute cycles must match retirements exactly.
        s.cores[0].breakdown.execute = 0;
        s.cores[0].breakdown.idle = 1;
        assert!(s.check_consistency().is_err());
    }

    #[test]
    fn summary_renders_per_core_rows() {
        let mut s = SimStats::new(2, 1, 1);
        s.cycles = 4;
        s.team_size = 1;
        s.cores[0].alu_ops = 2;
        s.cores[0].fetches = 2;
        s.cores[0].idle_cycles = 2;
        s.cores[0].breakdown.execute = 2;
        s.cores[0].breakdown.exec_tail = 2;
        s.cores[1].cg_cycles = 4;
        s.cores[1].breakdown.idle = 4;
        s.icache.fetches = 2;
        let table = s.summary().to_string();
        assert!(table.contains("pe0"), "missing core row:\n{table}");
        assert!(table.contains("pe1"), "missing core row:\n{table}");
        assert!(table.contains("100.0%"), "missing cg share:\n{table}");
        assert!(table.starts_with("run: 4 cycles"), "bad header:\n{table}");
    }

    #[test]
    fn skip_ratio_and_oracle_view() {
        let mut s = SimStats::new(1, 1, 1);
        assert_eq!(s.skip_ratio(), 0.0);
        s.cycles = 100;
        s.fast_forward.spans = 3;
        s.fast_forward.skipped_cycles = 80;
        assert!((s.skip_ratio() - 0.8).abs() < 1e-12);
        let oracle_view = s.without_fast_forward();
        assert_eq!(oracle_view.fast_forward, FastForwardStats::default());
        assert_eq!(oracle_view.cycles, s.cycles);
    }

    #[test]
    fn stats_without_fast_forward_field_deserialise() {
        // Records serialised before the fast-forward counters existed must
        // still round-trip (the field defaults to zero).
        let mut s = SimStats::new(1, 1, 1);
        s.cycles = 7;
        let serde::Value::Map(mut entries) = serde::Serialize::to_value(&s) else {
            panic!("SimStats must serialise to a map");
        };
        let before = entries.len();
        entries.retain(|(k, _)| k != "fast_forward");
        assert_eq!(entries.len(), before - 1, "field present before removal");
        let back: SimStats =
            serde::Deserialize::from_value(&serde::Value::Map(entries)).expect("deserialise");
        assert_eq!(back, s);
    }

    #[test]
    fn horizon_overhead_ratios_and_serde_defaults() {
        let mut s = SimStats::new(1, 1, 1);
        s.fast_forward.horizon_computations = 10;
        s.fast_forward.horizon_skips = 4;
        s.fast_forward.horizon_scan_nanos = 30;
        s.fast_forward.step_nanos = 70;
        assert!((s.fast_forward.horizon_hit_rate() - 0.4).abs() < 1e-12);
        assert!((s.fast_forward.horizon_scan_share() - 0.3).abs() < 1e-12);
        assert_eq!(FastForwardStats::default().horizon_hit_rate(), 0.0);
        assert_eq!(FastForwardStats::default().horizon_scan_share(), 0.0);
        // The oracle view clears the horizon fields with the rest.
        assert_eq!(
            s.without_fast_forward().fast_forward,
            FastForwardStats::default()
        );
        // Records serialised before the horizon fields existed still
        // round-trip: strip them from the nested map and deserialise.
        s.cycles = 3;
        let serde::Value::Map(mut entries) = serde::Serialize::to_value(&s) else {
            panic!("SimStats must serialise to a map");
        };
        let ff = entries
            .iter_mut()
            .find(|(k, _)| k == "fast_forward")
            .expect("fast_forward present");
        let serde::Value::Map(inner) = &mut ff.1 else {
            panic!("fast_forward must serialise to a map");
        };
        inner.retain(|(k, _)| k == "spans" || k == "skipped_cycles");
        let back: SimStats =
            serde::Deserialize::from_value(&serde::Value::Map(entries)).expect("deserialise");
        assert_eq!(back.cycles, 3);
        assert_eq!(back.fast_forward.horizon_computations, 0);
        assert_eq!(back.fast_forward.step_nanos, 0);
    }

    #[test]
    fn consistency_catches_fetch_mismatch() {
        let mut s = SimStats::new(1, 1, 1);
        s.cycles = 2;
        s.cores[0].alu_ops = 2;
        s.cores[0].fetches = 1;
        assert!(s.check_consistency().is_err());
    }
}

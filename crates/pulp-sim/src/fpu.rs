//! Shared-FPU arbitration.
//!
//! The `8c4flp` PULP instance shares 4 single-stage-pipeline FPUs among 8
//! cores with a fixed `core % 4` mapping. A pipelined FP op occupies its
//! FPU's issue slot for one cycle; divides block the unit for their full
//! latency. When both cores mapped to an FPU issue in the same cycle, one
//! of them stalls — this contention is one of the main mechanisms that
//! makes the minimum-energy core count of FP kernels land below 8.

use crate::isa::FpOp;

/// Tracks per-FPU occupancy.
#[derive(Debug, Clone)]
pub struct FpuPool {
    /// First cycle at which each FPU can accept a new op.
    free_at: Vec<u64>,
    model_contention: bool,
    fpu_latency: u32,
    fp_div_latency: u32,
}

/// Outcome of an FPU issue attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpuIssue {
    /// Cycles the issuing core is busy with the op (including issue cycle).
    pub core_busy: u32,
}

impl FpuPool {
    /// Creates a pool of `num_fpus` units.
    pub fn new(
        num_fpus: usize,
        model_contention: bool,
        fpu_latency: u32,
        fp_div_latency: u32,
    ) -> Self {
        Self {
            free_at: vec![0; num_fpus],
            model_contention,
            fpu_latency,
            fp_div_latency,
        }
    }

    /// Attempts to issue `op` on `fpu` in `cycle`.
    ///
    /// Returns `Some` with the core-side busy time when the unit accepted
    /// the op, `None` when the core must stall and retry.
    ///
    /// # Panics
    ///
    /// Panics if `fpu` is out of range.
    #[inline]
    pub fn try_issue(&mut self, fpu: usize, op: FpOp, cycle: u64) -> Option<FpuIssue> {
        if self.model_contention && self.free_at[fpu] > cycle {
            return None;
        }
        let (occupancy, core_busy) = match op {
            // Pipelined single-stage unit: one new op per cycle; the
            // issuing core is busy for the interconnect + execute latency.
            FpOp::Add | FpOp::Mul => (1, self.fpu_latency.max(1)),
            // Divides block the unit entirely.
            FpOp::Div => (self.fp_div_latency, self.fp_div_latency),
        };
        self.free_at[fpu] = cycle + u64::from(occupancy);
        Some(FpuIssue { core_busy })
    }

    /// Latest `free_at` stamp across the pool: the cycle by which every FPU
    /// has drained its current occupancy.
    ///
    /// Like the DMA engine, FPU occupancy is a cycle *stamp*, not a
    /// countdown, so the fast-forward path never needs to tick the pool
    /// when it jumps the clock. Note occupancy does not bound the event
    /// horizon either: contention can only delay a core that is `Ready`
    /// and issuing, and any `Ready` core already pins the horizon to 1.
    /// Exposed for diagnostics and the fast-forward tests.
    pub fn busy_until(&self) -> u64 {
        self.free_at.iter().copied().max().unwrap_or(0)
    }

    /// Number of FPUs in the pool.
    pub fn len(&self) -> usize {
        self.free_at.len()
    }

    /// Returns `true` if the pool has no FPUs.
    pub fn is_empty(&self) -> bool {
        self.free_at.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> FpuPool {
        FpuPool::new(4, true, 1, 10)
    }

    #[test]
    fn pipelined_ops_issue_once_per_cycle() {
        let mut p = pool();
        assert!(p.try_issue(0, FpOp::Add, 5).is_some());
        // Second issue on the same FPU in the same cycle loses arbitration.
        assert!(p.try_issue(0, FpOp::Mul, 5).is_none());
        // Next cycle is fine (single-stage pipeline).
        assert!(p.try_issue(0, FpOp::Mul, 6).is_some());
    }

    #[test]
    fn different_fpus_are_independent() {
        let mut p = pool();
        assert!(p.try_issue(0, FpOp::Add, 5).is_some());
        assert!(p.try_issue(1, FpOp::Add, 5).is_some());
    }

    #[test]
    fn divide_blocks_the_unit() {
        let mut p = pool();
        let issue = p.try_issue(2, FpOp::Div, 10).expect("first issue");
        assert_eq!(issue.core_busy, 10);
        assert!(p.try_issue(2, FpOp::Add, 15).is_none());
        assert!(p.try_issue(2, FpOp::Add, 20).is_some());
    }

    #[test]
    fn issue_is_stable_across_clock_jumps() {
        // Fast-forward advances `cycle` in large steps; stamp-based
        // occupancy must behave as if every skipped cycle had been ticked.
        let mut p = pool();
        let issue = p.try_issue(1, FpOp::Div, 7).expect("issue");
        assert_eq!(p.busy_until(), 7 + u64::from(issue.core_busy));
        // Jump far past the occupancy: the unit accepts immediately.
        assert!(p.try_issue(1, FpOp::Add, 1_000_000).is_some());
        assert_eq!(p.busy_until(), 1_000_001);
    }

    #[test]
    fn disabled_contention_always_accepts() {
        let mut p = FpuPool::new(4, false, 1, 10);
        assert!(p.try_issue(0, FpOp::Div, 0).is_some());
        assert!(p.try_issue(0, FpOp::Add, 0).is_some());
        assert!(p.try_issue(0, FpOp::Add, 0).is_some());
    }
}

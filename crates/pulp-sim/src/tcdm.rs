//! TCDM bank-conflict arbitration.
//!
//! The TCDM serves at most one request per bank per cycle. Requests that
//! lose arbitration are retried by the issuing core on the next cycle; the
//! deferral is recorded as a *conflict* (the `L1_conflicts` dynamic feature
//! of the paper counts exactly these events).

/// Per-cycle, per-bank grant tracker.
///
/// Uses cycle-stamping so no per-cycle clearing is needed: a bank is free in
/// cycle `c` iff its stamp differs from `c`.
#[derive(Debug, Clone)]
pub struct TcdmArbiter {
    granted_at: Vec<u64>,
    model_conflicts: bool,
}

impl TcdmArbiter {
    /// Creates an arbiter for `banks` banks.
    ///
    /// When `model_conflicts` is `false` every request is granted (ideal
    /// multi-ported memory; used by the ablation experiments).
    pub fn new(banks: usize, model_conflicts: bool) -> Self {
        Self {
            granted_at: vec![u64::MAX; banks],
            model_conflicts,
        }
    }

    /// Attempts to access `bank` in `cycle`. Returns `true` when granted.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[inline]
    pub fn try_access(&mut self, bank: usize, cycle: u64) -> bool {
        if !self.model_conflicts {
            return true;
        }
        if self.granted_at[bank] == cycle {
            false
        } else {
            self.granted_at[bank] = cycle;
            true
        }
    }

    /// Number of banks managed.
    pub fn banks(&self) -> usize {
        self.granted_at.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_grant_per_bank_per_cycle() {
        let mut a = TcdmArbiter::new(4, true);
        assert!(a.try_access(2, 10));
        assert!(!a.try_access(2, 10));
        // Other banks unaffected.
        assert!(a.try_access(3, 10));
        // Next cycle the bank is free again.
        assert!(a.try_access(2, 11));
    }

    #[test]
    fn disabled_model_always_grants() {
        let mut a = TcdmArbiter::new(1, false);
        assert!(a.try_access(0, 5));
        assert!(a.try_access(0, 5));
        assert!(a.try_access(0, 5));
    }
}

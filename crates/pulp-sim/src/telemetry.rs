//! Telemetry hook points for the simulator's hot loop.
//!
//! [`Telemetry`] receives one callback per core per cycle (with its
//! attributed [`CycleCause`]) plus region boundaries (fork signals and
//! barrier releases). The no-op impl [`NoTelemetry`] has empty
//! `#[inline(always)]` methods, so `simulate` monomorphises to exactly the
//! uninstrumented loop — the bench guard in `pulp-bench` keeps this honest.
//!
//! [`RegionProfiler`] is the bundled implementation: it segments a run
//! into serial/parallel regions (fork → barrier-release spans) and
//! accumulates a [`CycleBreakdown`] per segment, giving the per-parallel-
//! region attribution the profiling CLI reports.

use crate::cause::{CycleBreakdown, CycleCause};

/// Observer of per-cycle attribution and region boundaries.
///
/// All methods default to no-ops so implementations override only what
/// they need.
pub trait Telemetry {
    /// One core spent `cycle` on `cause`.
    #[inline(always)]
    fn on_cycle(&mut self, cycle: u64, core: usize, cause: CycleCause) {
        let _ = (cycle, core, cause);
    }

    /// One core spent `n` consecutive cycles starting at `cycle` on `cause`.
    ///
    /// Bulk entry point used by the simulator's event-horizon fast-forward:
    /// inside a bulk span nothing can change, so a core's whole span is
    /// reported in one call instead of `n` [`Telemetry::on_cycle`] calls.
    /// The default implementation falls back to per-cycle `on_cycle` calls,
    /// so existing observers stay correct without changes. Note the
    /// cross-core interleaving differs from single-step mode (spans arrive
    /// core-major rather than cycle-major); per-core or order-insensitive
    /// accumulators — every implementation in this workspace — are
    /// unaffected.
    #[inline(always)]
    fn advance_n(&mut self, cycle: u64, core: usize, n: u64, cause: CycleCause) {
        for i in 0..n {
            self.on_cycle(cycle + i, core, cause);
        }
    }

    /// The master signalled a fork (a parallel region opens).
    #[inline(always)]
    fn on_fork(&mut self, cycle: u64) {
        let _ = cycle;
    }

    /// The event unit released a barrier (a parallel region closes).
    #[inline(always)]
    fn on_barrier_release(&mut self, cycle: u64) {
        let _ = cycle;
    }

    /// The run finished after `cycles` total cycles.
    #[inline(always)]
    fn on_finish(&mut self, cycles: u64) {
        let _ = cycles;
    }
}

/// Zero-cost telemetry: every hook compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoTelemetry;

impl Telemetry for NoTelemetry {
    // Explicitly empty (rather than the looping default) so the bulk path
    // monomorphises to pure counter arithmetic.
    #[inline(always)]
    fn advance_n(&mut self, _cycle: u64, _core: usize, _n: u64, _cause: CycleCause) {}
}

impl<T: Telemetry + ?Sized> Telemetry for &mut T {
    #[inline(always)]
    fn on_cycle(&mut self, cycle: u64, core: usize, cause: CycleCause) {
        (**self).on_cycle(cycle, core, cause);
    }

    #[inline(always)]
    fn advance_n(&mut self, cycle: u64, core: usize, n: u64, cause: CycleCause) {
        (**self).advance_n(cycle, core, n, cause);
    }

    #[inline(always)]
    fn on_fork(&mut self, cycle: u64) {
        (**self).on_fork(cycle);
    }

    #[inline(always)]
    fn on_barrier_release(&mut self, cycle: u64) {
        (**self).on_barrier_release(cycle);
    }

    #[inline(always)]
    fn on_finish(&mut self, cycles: u64) {
        (**self).on_finish(cycles);
    }
}

/// Kind of a [`RegionProfile`] segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionKind {
    /// Before the first fork, or between a barrier release and the next
    /// fork (master-only code, plus sleeping workers).
    Serial,
    /// Between a fork signal and the barrier release that joins it.
    Parallel,
}

/// One serial or parallel span of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionProfile {
    /// Serial or parallel.
    pub kind: RegionKind,
    /// 0-based index among regions of the same kind.
    pub index: usize,
    /// First cycle of the region.
    pub start_cycle: u64,
    /// One past the last cycle of the region (filled on close).
    pub end_cycle: u64,
    /// Cycle attribution summed over all cores for this span.
    pub breakdown: CycleBreakdown,
}

impl RegionProfile {
    /// Region length in cycles.
    pub fn cycles(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle)
    }

    /// Stable display label, e.g. `serial#0` or `parallel#2`.
    pub fn label(&self) -> String {
        match self.kind {
            RegionKind::Serial => format!("serial#{}", self.index),
            RegionKind::Parallel => format!("parallel#{}", self.index),
        }
    }
}

/// Telemetry that attributes cycles to serial/parallel regions.
///
/// Segmentation model: a run starts in a serial region; each fork signal
/// opens a parallel region, and the next barrier release closes it back to
/// serial. Barrier releases inside serial spans (e.g. consecutive barriers
/// without an intervening fork) are treated as region-neutral. This is a
/// telemetry-level view — `SimStats` stays the per-run ground truth.
#[derive(Debug, Clone, Default)]
pub struct RegionProfiler {
    regions: Vec<RegionProfile>,
    serial_count: usize,
    parallel_count: usize,
    /// Total per-cause attribution over the whole run (all cores).
    pub totals: CycleBreakdown,
}

impl RegionProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Closed + open regions recorded so far, in time order.
    pub fn regions(&self) -> &[RegionProfile] {
        &self.regions
    }

    fn open(&mut self, kind: RegionKind, cycle: u64) {
        let index = match kind {
            RegionKind::Serial => {
                self.serial_count += 1;
                self.serial_count - 1
            }
            RegionKind::Parallel => {
                self.parallel_count += 1;
                self.parallel_count - 1
            }
        };
        self.regions.push(RegionProfile {
            kind,
            index,
            start_cycle: cycle,
            end_cycle: cycle,
            breakdown: CycleBreakdown::default(),
        });
    }

    fn close_current(&mut self, cycle: u64) {
        if let Some(r) = self.regions.last_mut() {
            r.end_cycle = cycle;
        }
    }

    fn current_kind(&self) -> Option<RegionKind> {
        self.regions.last().map(|r| r.kind)
    }
}

impl Telemetry for RegionProfiler {
    fn on_cycle(&mut self, cycle: u64, _core: usize, cause: CycleCause) {
        if self.regions.is_empty() {
            self.open(RegionKind::Serial, cycle);
        }
        self.totals.add(cause);
        if let Some(r) = self.regions.last_mut() {
            r.breakdown.add(cause);
            r.end_cycle = r.end_cycle.max(cycle + 1);
        }
    }

    fn advance_n(&mut self, cycle: u64, _core: usize, n: u64, cause: CycleCause) {
        // O(1) bulk attribution: a span never crosses a fork or release
        // (those end the span), so it lands entirely in the current region.
        if n == 0 {
            return;
        }
        if self.regions.is_empty() {
            self.open(RegionKind::Serial, cycle);
        }
        self.totals.add_n(cause, n);
        if let Some(r) = self.regions.last_mut() {
            r.breakdown.add_n(cause, n);
            r.end_cycle = r.end_cycle.max(cycle + n);
        }
    }

    fn on_fork(&mut self, cycle: u64) {
        if self.regions.is_empty() {
            self.open(RegionKind::Serial, cycle);
        }
        // The fork cycle itself still belongs to the serial span.
        self.close_current(cycle + 1);
        self.open(RegionKind::Parallel, cycle + 1);
    }

    fn on_barrier_release(&mut self, cycle: u64) {
        if self.current_kind() == Some(RegionKind::Parallel) {
            self.close_current(cycle + 1);
            self.open(RegionKind::Serial, cycle + 1);
        }
    }

    fn on_finish(&mut self, cycles: u64) {
        self.close_current(cycles);
        // Drop an empty trailing region (e.g. a barrier release on the
        // run's final cycle).
        if let Some(last) = self.regions.last() {
            if last.cycles() == 0 && last.breakdown.total() == 0 {
                self.regions.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_telemetry_is_a_unit() {
        let mut t = NoTelemetry;
        t.on_cycle(0, 0, CycleCause::Execute);
        t.on_fork(1);
        t.on_barrier_release(2);
        t.on_finish(3);
    }

    #[test]
    fn profiler_segments_fork_join() {
        let mut p = RegionProfiler::new();
        // Serial prologue: 2 cycles of execute on core 0.
        p.on_cycle(0, 0, CycleCause::Execute);
        p.on_cycle(1, 0, CycleCause::Runtime);
        p.on_fork(1);
        // Parallel body.
        p.on_cycle(2, 0, CycleCause::Execute);
        p.on_cycle(2, 1, CycleCause::Execute);
        p.on_cycle(3, 0, CycleCause::Barrier);
        p.on_cycle(3, 1, CycleCause::Execute);
        p.on_barrier_release(3);
        // Serial epilogue.
        p.on_cycle(4, 0, CycleCause::Execute);
        p.on_finish(5);

        let regions = p.regions();
        assert_eq!(regions.len(), 3);
        assert_eq!(regions[0].kind, RegionKind::Serial);
        assert_eq!(regions[0].label(), "serial#0");
        assert_eq!(regions[0].breakdown.total(), 2);
        assert_eq!(regions[1].kind, RegionKind::Parallel);
        assert_eq!(regions[1].breakdown.execute, 3);
        assert_eq!(regions[1].breakdown.barrier, 1);
        assert_eq!(regions[2].kind, RegionKind::Serial);
        assert_eq!(regions[2].label(), "serial#1");
        assert_eq!(p.totals.total(), 7);
    }

    #[test]
    fn advance_n_matches_repeated_on_cycle() {
        let mut bulk = RegionProfiler::new();
        let mut single = RegionProfiler::new();
        // Serial prologue, fork, a long quiet parallel span, join.
        for p in [&mut bulk, &mut single] {
            p.on_cycle(0, 0, CycleCause::Execute);
            p.on_fork(0);
        }
        bulk.advance_n(1, 0, 40, CycleCause::Barrier);
        bulk.advance_n(1, 1, 40, CycleCause::ForkWait);
        for c in 1..41 {
            single.on_cycle(c, 0, CycleCause::Barrier);
            single.on_cycle(c, 1, CycleCause::ForkWait);
        }
        for p in [&mut bulk, &mut single] {
            p.on_barrier_release(40);
            p.on_finish(41);
        }
        assert_eq!(bulk.totals, single.totals);
        assert_eq!(bulk.regions(), single.regions());
    }

    #[test]
    fn advance_n_zero_is_a_noop() {
        let mut p = RegionProfiler::new();
        p.advance_n(5, 0, 0, CycleCause::Barrier);
        assert!(p.regions().is_empty());
        assert_eq!(p.totals.total(), 0);
    }

    #[test]
    fn spurious_release_in_serial_is_neutral() {
        let mut p = RegionProfiler::new();
        p.on_cycle(0, 0, CycleCause::Execute);
        p.on_barrier_release(0);
        p.on_cycle(1, 0, CycleCause::Execute);
        p.on_finish(2);
        assert_eq!(p.regions().len(), 1);
        assert_eq!(p.regions()[0].breakdown.execute, 2);
    }
}

//! # pulp-sim — cycle-level PULP cluster simulator
//!
//! A from-scratch, cycle-level model of a PULP-like ultra-low-power RISC-V
//! cluster, standing in for the GVSOC virtual platform used in *"Source
//! Code Classification for Energy Efficiency in Parallel Ultra Low-Power
//! Microcontrollers"* (DATE 2021). The default [`ClusterConfig`] mirrors
//! the paper's `8c4flp` instance: 8 cores, 4 shared single-stage FPUs,
//! a 64 KiB TCDM over 16 word-interleaved banks, and a 512 KiB L2 with a
//! 15-cycle latency.
//!
//! The simulator executes [`Program`]s — compact per-core bytecode with
//! symbolic loops and affine address expressions — and produces
//! [`SimStats`] plus, optionally, a GVSOC-style textual trace consumed by
//! the trace-analyser/listener stack in the `pulp-energy-model` crate.
//!
//! Modelled mechanisms (each is an explicit, testable unit):
//!
//! * TCDM bank-conflict arbitration ([`tcdm`])
//! * shared-FPU contention with the fixed `core % 4` mapping ([`fpu`])
//! * L2 access latency
//! * barrier sleep and fork wait with clock gating ([`event_unit`])
//! * OpenMP fork/join runtime overhead
//! * critical-section serialisation
//! * I-cache use/refill accounting ([`icache`])
//! * a DMA engine ([`dma`]; unused by the paper's dataset but part of the
//!   platform energy envelope)
//!
//! # Examples
//!
//! Run two cores storing to disjoint TCDM banks:
//!
//! ```
//! use pulp_sim::{simulate, ClusterConfig, Program, SegOp, AddrExpr, OpKind, TCDM_BASE};
//!
//! # fn main() -> Result<(), pulp_sim::SimError> {
//! let store = |addr: u32| SegOp::Instr {
//!     kind: OpKind::Store,
//!     addr: Some(AddrExpr::constant(addr)),
//! };
//! let program = Program::new(vec![vec![store(TCDM_BASE)], vec![store(TCDM_BASE + 4)]]);
//! let stats = simulate(&ClusterConfig::default(), &program)?;
//! assert_eq!(stats.l1_writes(), 2);
//! assert_eq!(stats.l1_conflicts(), 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cause;
pub mod cluster;
pub mod config;
pub mod dma;
pub mod event_unit;
pub mod fpu;
pub mod icache;
pub mod isa;
pub mod program;
pub mod stats;
pub mod tcdm;
pub mod telemetry;
pub mod trace;

/// Version of the simulator's timing/behaviour model.
///
/// Bump this whenever a change alters simulated cycle counts or event
/// statistics for *any* program (latency model tweaks, arbitration order,
/// new stall causes...). Downstream caches — notably the sweep cache in
/// `pulp-energy` — fold this constant into their keys, so a bump
/// invalidates every cached simulation result instead of silently serving
/// stale numbers.
pub const SIM_VERSION: u32 = 1;

pub use cause::{CycleBreakdown, CycleCause};
pub use cluster::{
    simulate, simulate_instrumented, simulate_opts, simulate_traced, SimError, SimOptions,
    SimScratch, DEFAULT_MAX_CYCLES,
};
pub use config::{ClusterConfig, L2_BASE, TCDM_BASE};
pub use isa::{FpOp, MicroOp, OpKind};
pub use program::{AddrExpr, Cursor, Program, SegOp, Step, ValidateProgramError};
pub use stats::{
    BankStats, CoreStats, DmaStats, FastForwardStats, IcacheStats, SimStats, SimStatsSummary,
};
pub use telemetry::{NoTelemetry, RegionKind, RegionProfile, RegionProfiler, Telemetry};
pub use trace::{render_line, NullSink, TextSink, TraceEvent, TraceSink, VecSink};

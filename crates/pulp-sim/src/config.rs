//! Cluster configuration.
//!
//! The default configuration mirrors the `8c4flp` PULP instance used in the
//! paper: 8 RI5CY-like cores, 4 shared single-stage-pipeline FPUs with a
//! fixed core-to-FPU mapping, a 64 KiB TCDM split over 16 word-interleaved
//! banks, and a 512 KiB L2 scratchpad split over 32 banks with a 15-cycle
//! access latency.

use serde::{Deserialize, Serialize};

/// Base address of the on-cluster TCDM scratchpad.
pub const TCDM_BASE: u32 = 0x1000_0000;
/// Base address of the off-cluster L2 scratchpad.
pub const L2_BASE: u32 = 0x1C00_0000;

/// Static description of the simulated cluster.
///
/// Use [`ClusterConfig::default`] for the paper's `8c4flp` instance, or the
/// builder-style setters to derive ablated platforms (e.g. disabling clock
/// gating or bank-conflict modelling for the ablation experiments).
///
/// # Examples
///
/// ```
/// use pulp_sim::ClusterConfig;
///
/// let cfg = ClusterConfig::default();
/// assert_eq!(cfg.num_cores, 8);
/// assert_eq!(cfg.num_fpus, 4);
/// assert_eq!(cfg.tcdm_bytes, 64 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of processing elements in the cluster (paper instance: 8).
    pub num_cores: usize,
    /// Number of word-interleaved TCDM banks (paper instance: 16).
    pub tcdm_banks: usize,
    /// Total TCDM capacity in bytes (paper instance: 64 KiB).
    pub tcdm_bytes: u32,
    /// Number of L2 banks (paper instance: 32).
    pub l2_banks: usize,
    /// Total L2 capacity in bytes (paper instance: 512 KiB).
    pub l2_bytes: u32,
    /// L2 access latency in cycles (paper instance: 15).
    pub l2_latency: u32,
    /// Number of shared FPUs (paper instance: 4).
    pub num_fpus: usize,
    /// Latency in cycles of a pipelined FP ALU operation.
    pub fpu_latency: u32,
    /// Latency in cycles of a (non-pipelined) FP divide.
    pub fp_div_latency: u32,
    /// Latency in cycles of a (non-pipelined) integer divide.
    pub int_div_latency: u32,
    /// Latency in cycles of an integer multiply.
    pub mul_latency: u32,
    /// Extra cycles paid by a taken branch.
    pub taken_branch_penalty: u32,
    /// Base cycles for the OpenMP runtime to open a parallel region.
    pub fork_latency: u32,
    /// Additional fork cycles per worker woken (the master configures and
    /// signals each team member).
    pub fork_per_worker: u32,
    /// Cycles between the last barrier arrival and the event-unit
    /// broadcast that releases the team.
    pub barrier_latency: u32,
    /// I-cache refill cost in cycles for the first touch of a basic block.
    pub icache_refill_cycles: u32,
    /// Model clock gating of idle cores (ablation switch; `true` on PULP).
    pub model_clock_gating: bool,
    /// Model contention on the shared FPUs (ablation switch).
    pub model_fpu_contention: bool,
    /// Model TCDM bank conflicts (ablation switch).
    pub model_bank_conflicts: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            num_cores: 8,
            tcdm_banks: 16,
            tcdm_bytes: 64 * 1024,
            l2_banks: 32,
            l2_bytes: 512 * 1024,
            l2_latency: 15,
            num_fpus: 4,
            fpu_latency: 1,
            fp_div_latency: 10,
            int_div_latency: 8,
            mul_latency: 1,
            taken_branch_penalty: 1,
            fork_latency: 384,
            fork_per_worker: 24,
            barrier_latency: 48,
            icache_refill_cycles: 8,
            model_clock_gating: true,
            model_fpu_contention: true,
            model_bank_conflicts: true,
        }
    }
}

impl ClusterConfig {
    /// Creates the default `8c4flp` configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the TCDM bank index serving byte address `addr`.
    ///
    /// The TCDM is word-interleaved: consecutive 32-bit words map to
    /// consecutive banks.
    #[inline]
    pub fn tcdm_bank_of(&self, addr: u32) -> usize {
        ((addr >> 2) as usize) % self.tcdm_banks
    }

    /// Returns the L2 bank index serving byte address `addr`.
    #[inline]
    pub fn l2_bank_of(&self, addr: u32) -> usize {
        ((addr >> 2) as usize) % self.l2_banks
    }

    /// Returns the FPU index serving `core` (fixed 2:1 mapping on `8c4flp`).
    #[inline]
    pub fn fpu_of(&self, core: usize) -> usize {
        core % self.num_fpus
    }

    /// Returns `true` if `addr` falls inside the TCDM address window.
    #[inline]
    pub fn is_tcdm(&self, addr: u32) -> bool {
        (TCDM_BASE..TCDM_BASE + self.tcdm_bytes).contains(&addr)
    }

    /// Returns `true` if `addr` falls inside the L2 address window.
    #[inline]
    pub fn is_l2(&self, addr: u32) -> bool {
        (L2_BASE..L2_BASE + self.l2_bytes).contains(&addr)
    }

    /// Disables clock-gating modelling (idle cores burn active-wait energy).
    pub fn without_clock_gating(mut self) -> Self {
        self.model_clock_gating = false;
        self
    }

    /// Disables FPU contention modelling (every core sees a private FPU).
    pub fn without_fpu_contention(mut self) -> Self {
        self.model_fpu_contention = false;
        self
    }

    /// Disables TCDM bank-conflict modelling (ideal multi-ported memory).
    pub fn without_bank_conflicts(mut self) -> Self {
        self.model_bank_conflicts = false;
        self
    }

    /// Checks the configuration for physically meaningless settings.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first offending field: zero
    /// cores/banks/FPUs, capacities that are not multiples of the bank
    /// count, or a zero L2 latency.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_cores == 0 {
            return Err("num_cores must be at least 1".into());
        }
        if self.tcdm_banks == 0 || self.l2_banks == 0 {
            return Err("memory bank counts must be at least 1".into());
        }
        if self.num_fpus == 0 {
            return Err("num_fpus must be at least 1".into());
        }
        if self.tcdm_bytes == 0 || !self.tcdm_bytes.is_multiple_of(4) {
            return Err("tcdm_bytes must be a positive multiple of the word size".into());
        }
        if self.l2_bytes == 0 || !self.l2_bytes.is_multiple_of(4) {
            return Err("l2_bytes must be a positive multiple of the word size".into());
        }
        if self.l2_latency == 0 {
            return Err("l2_latency must be at least 1 cycle".into());
        }
        if self.fpu_latency == 0 || self.fp_div_latency == 0 || self.int_div_latency == 0 {
            return Err("operation latencies must be at least 1 cycle".into());
        }
        Ok(())
    }

    /// Sets the number of cores (used by tests exploring smaller clusters).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or larger than 1024.
    pub fn with_cores(mut self, n: usize) -> Self {
        assert!(n > 0 && n <= 1024, "core count out of range: {n}");
        self.num_cores = n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_8c4flp() {
        let c = ClusterConfig::default();
        assert_eq!(c.num_cores, 8);
        assert_eq!(c.tcdm_banks, 16);
        assert_eq!(c.l2_latency, 15);
        assert_eq!(c.num_fpus, 4);
        assert!(c.model_clock_gating);
    }

    #[test]
    fn bank_mapping_is_word_interleaved() {
        let c = ClusterConfig::default();
        assert_eq!(c.tcdm_bank_of(TCDM_BASE), 0);
        assert_eq!(c.tcdm_bank_of(TCDM_BASE + 4), 1);
        assert_eq!(c.tcdm_bank_of(TCDM_BASE + 4 * 16), 0);
        // Sub-word addresses map to the same bank as their word.
        assert_eq!(c.tcdm_bank_of(TCDM_BASE + 2), c.tcdm_bank_of(TCDM_BASE));
    }

    #[test]
    fn fpu_mapping_is_fixed_modulo() {
        let c = ClusterConfig::default();
        assert_eq!(c.fpu_of(0), 0);
        assert_eq!(c.fpu_of(4), 0);
        assert_eq!(c.fpu_of(7), 3);
    }

    #[test]
    fn address_windows_do_not_overlap() {
        let c = ClusterConfig::default();
        assert!(c.is_tcdm(TCDM_BASE));
        assert!(!c.is_l2(TCDM_BASE));
        assert!(c.is_l2(L2_BASE));
        assert!(!c.is_tcdm(L2_BASE));
        assert!(!c.is_tcdm(TCDM_BASE + c.tcdm_bytes));
    }

    #[test]
    fn ablation_builders_flip_flags() {
        let c = ClusterConfig::default()
            .without_clock_gating()
            .without_fpu_contention()
            .without_bank_conflicts();
        assert!(!c.model_clock_gating);
        assert!(!c.model_fpu_contention);
        assert!(!c.model_bank_conflicts);
    }

    #[test]
    #[should_panic(expected = "core count out of range")]
    fn zero_cores_rejected() {
        let _ = ClusterConfig::default().with_cores(0);
    }

    #[test]
    fn default_config_validates() {
        assert_eq!(ClusterConfig::default().validate(), Ok(()));
    }

    #[test]
    fn validate_names_the_offending_field() {
        let c = ClusterConfig {
            num_fpus: 0,
            ..ClusterConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("num_fpus"));
        let c = ClusterConfig {
            l2_latency: 0,
            ..ClusterConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("l2_latency"));
        let c = ClusterConfig {
            tcdm_bytes: 7,
            ..ClusterConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("tcdm_bytes"));
    }
}

//! Execution-trace events and their GVSOC-style textual rendering.
//!
//! The paper extracts dynamic features by parsing GVSOC textual traces with
//! a listener stack. This module is the producer side of that interface:
//! the cluster emits [`TraceEvent`]s into a [`TraceSink`], and
//! [`render_line`] serialises an event into a `cycle: path: payload` line
//! matching the component paths the paper quotes (`cluster/pe/insn`,
//! `cluster/pe/trace`, `cluster/l1/bank/trace`, ...).

use crate::cause::CycleCause;
use crate::isa::OpKind;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One event observed during simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A core retired an instruction (path `cluster/pe<N>/insn`).
    Insn {
        /// Retiring core.
        core: usize,
        /// Operation class.
        kind: OpKind,
        /// Address for memory operations.
        addr: Option<u32>,
    },
    /// A core spent a cycle actively waiting (path `cluster/pe<N>/trace`).
    Stall {
        /// Stalling core.
        core: usize,
        /// Why the cycle was lost.
        cause: CycleCause,
    },
    /// A core entered clock gating (path `cluster/pe<N>/trace`).
    ///
    /// The cause applies to the whole region up to the matching `CgExit`
    /// (gated regions are single-cause by construction: a sleeping core
    /// wakes — emitting `CgExit` — before its situation can change).
    CgEnter {
        /// Core being gated.
        core: usize,
        /// Why the region's cycles are lost.
        cause: CycleCause,
    },
    /// A core left clock gating (path `cluster/pe<N>/trace`).
    CgExit {
        /// Core being woken.
        core: usize,
    },
    /// A TCDM bank served a request (path `cluster/l1/bank<N>/trace`).
    L1Access {
        /// Bank index.
        bank: usize,
        /// `true` for writes.
        write: bool,
    },
    /// A TCDM bank deferred a request due to a conflict.
    L1Conflict {
        /// Bank index.
        bank: usize,
    },
    /// An L2 bank served a request (path `cluster/l2/bank<N>/trace`).
    L2Access {
        /// Bank index.
        bank: usize,
        /// `true` for writes.
        write: bool,
    },
    /// A core arrived at the cluster barrier (path `cluster/event_unit`).
    BarrierArrive {
        /// Arriving core.
        core: usize,
    },
    /// All cores passed the barrier.
    BarrierRelease,
    /// The master forked a parallel region (path `cluster/event_unit`).
    Fork,
    /// Cold-start I-cache refill count, reported once at end of run
    /// (path `cluster/icache`).
    IcacheRefill {
        /// Number of line refills.
        count: u64,
    },
    /// The DMA engine completed a transfer (path `cluster/dma`).
    Dma {
        /// Words moved.
        words: u64,
        /// `true` for L2 → TCDM.
        inbound: bool,
    },
}

/// Receiver of trace events.
///
/// The simulator is generic over the sink so the fast path ([`NullSink`])
/// compiles to nothing. Pass `&mut` sinks where needed — the trait is
/// implemented for mutable references.
pub trait TraceSink {
    /// Called once per event with the cycle it occurred in.
    fn emit(&mut self, cycle: u64, event: TraceEvent);

    /// Emits `event` once per cycle for `n` consecutive cycles starting at
    /// `cycle`.
    ///
    /// Delta-aware entry point for the simulator's fast-forward: a core
    /// that actively waits through a whole bulk span produces `n` identical
    /// `Stall` lines, and this method delivers them without re-entering the
    /// per-cycle loop. The default implementation replays `emit` per cycle,
    /// so the observable stream is identical to single-step emission.
    fn emit_n(&mut self, cycle: u64, n: u64, event: TraceEvent) {
        for i in 0..n {
            self.emit(cycle + i, event);
        }
    }

    /// Returns `true` when the sink discards everything ([`NullSink`]).
    ///
    /// The fast-forward bulk path consults this to skip event replay
    /// entirely; after monomorphisation the branch is constant-folded.
    #[inline(always)]
    fn is_null(&self) -> bool {
        false
    }
}

/// A sink that drops every event (zero-cost fast path).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn emit(&mut self, _cycle: u64, _event: TraceEvent) {}

    #[inline(always)]
    fn emit_n(&mut self, _cycle: u64, _n: u64, _event: TraceEvent) {}

    #[inline(always)]
    fn is_null(&self) -> bool {
        true
    }
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    #[inline(always)]
    fn emit(&mut self, cycle: u64, event: TraceEvent) {
        (**self).emit(cycle, event);
    }

    #[inline(always)]
    fn emit_n(&mut self, cycle: u64, n: u64, event: TraceEvent) {
        (**self).emit_n(cycle, n, event);
    }

    #[inline(always)]
    fn is_null(&self) -> bool {
        (**self).is_null()
    }
}

/// A sink that stores events in memory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VecSink {
    /// Collected `(cycle, event)` pairs in emission order.
    pub events: Vec<(u64, TraceEvent)>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for VecSink {
    fn emit(&mut self, cycle: u64, event: TraceEvent) {
        self.events.push((cycle, event));
    }
}

/// A sink that renders each event as a GVSOC-style text line.
#[derive(Debug, Clone, Default)]
pub struct TextSink {
    /// Rendered trace, one event per line.
    pub text: String,
}

impl TextSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for TextSink {
    fn emit(&mut self, cycle: u64, event: TraceEvent) {
        render_line(&mut self.text, cycle, event);
        self.text.push('\n');
    }
}

/// Appends the textual form of `event` (without trailing newline) to `out`.
///
/// Line grammar: `<cycle>: <component path>: <payload>`, e.g.
///
/// ```text
/// 1042: cluster/pe3/insn: lw 0x10000040
/// 1043: cluster/pe3/trace: cg_enter barrier
/// 1043: cluster/l1/bank5/trace: write
/// ```
pub fn render_line(out: &mut String, cycle: u64, event: TraceEvent) {
    match event {
        TraceEvent::Insn { core, kind, addr } => {
            let _ = write!(out, "{cycle}: cluster/pe{core}/insn: {}", kind.mnemonic());
            if let Some(a) = addr {
                let _ = write!(out, " {a:#010x}");
            }
        }
        TraceEvent::Stall { core, cause } => {
            let _ = write!(
                out,
                "{cycle}: cluster/pe{core}/trace: stall {}",
                cause.token()
            );
        }
        TraceEvent::CgEnter { core, cause } => {
            let _ = write!(
                out,
                "{cycle}: cluster/pe{core}/trace: cg_enter {}",
                cause.token()
            );
        }
        TraceEvent::CgExit { core } => {
            let _ = write!(out, "{cycle}: cluster/pe{core}/trace: cg_exit");
        }
        TraceEvent::L1Access { bank, write } => {
            let what = if write { "write" } else { "read" };
            let _ = write!(out, "{cycle}: cluster/l1/bank{bank}/trace: {what}");
        }
        TraceEvent::L1Conflict { bank } => {
            let _ = write!(out, "{cycle}: cluster/l1/bank{bank}/trace: conflict");
        }
        TraceEvent::L2Access { bank, write } => {
            let what = if write { "write" } else { "read" };
            let _ = write!(out, "{cycle}: cluster/l2/bank{bank}/trace: {what}");
        }
        TraceEvent::BarrierArrive { core } => {
            let _ = write!(out, "{cycle}: cluster/event_unit: arrive pe{core}");
        }
        TraceEvent::BarrierRelease => {
            let _ = write!(out, "{cycle}: cluster/event_unit: release");
        }
        TraceEvent::Fork => {
            let _ = write!(out, "{cycle}: cluster/event_unit: fork");
        }
        TraceEvent::IcacheRefill { count } => {
            let _ = write!(out, "{cycle}: cluster/icache: refill {count}");
        }
        TraceEvent::Dma { words, inbound } => {
            let dir = if inbound { "in" } else { "out" };
            let _ = write!(out, "{cycle}: cluster/dma: transfer {dir} {words}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::OpKind;

    fn line(cycle: u64, e: TraceEvent) -> String {
        let mut s = String::new();
        render_line(&mut s, cycle, e);
        s
    }

    #[test]
    fn renders_insn_with_address() {
        let l = line(
            1042,
            TraceEvent::Insn {
                core: 3,
                kind: OpKind::Load,
                addr: Some(0x1000_0040),
            },
        );
        assert_eq!(l, "1042: cluster/pe3/insn: lw 0x10000040");
    }

    #[test]
    fn renders_insn_without_address() {
        let l = line(
            7,
            TraceEvent::Insn {
                core: 0,
                kind: OpKind::Alu,
                addr: None,
            },
        );
        assert_eq!(l, "7: cluster/pe0/insn: alu");
    }

    #[test]
    fn renders_bank_events() {
        assert_eq!(
            line(
                9,
                TraceEvent::L1Access {
                    bank: 5,
                    write: true
                }
            ),
            "9: cluster/l1/bank5/trace: write"
        );
        assert_eq!(
            line(9, TraceEvent::L1Conflict { bank: 15 }),
            "9: cluster/l1/bank15/trace: conflict"
        );
        assert_eq!(
            line(
                10,
                TraceEvent::L2Access {
                    bank: 31,
                    write: false
                }
            ),
            "10: cluster/l2/bank31/trace: read"
        );
    }

    #[test]
    fn renders_cg_region_markers() {
        assert_eq!(
            line(
                1,
                TraceEvent::CgEnter {
                    core: 2,
                    cause: CycleCause::Barrier
                }
            ),
            "1: cluster/pe2/trace: cg_enter barrier"
        );
        assert_eq!(
            line(4, TraceEvent::CgExit { core: 2 }),
            "4: cluster/pe2/trace: cg_exit"
        );
    }

    #[test]
    fn renders_stall_with_cause() {
        assert_eq!(
            line(
                9,
                TraceEvent::Stall {
                    core: 1,
                    cause: CycleCause::TcdmConflict
                }
            ),
            "9: cluster/pe1/trace: stall tcdm_conflict"
        );
        assert_eq!(
            line(
                9,
                TraceEvent::Stall {
                    core: 0,
                    cause: CycleCause::FpuContention
                }
            ),
            "9: cluster/pe0/trace: stall fpu_contention"
        );
    }

    #[test]
    fn emit_n_replays_one_event_per_cycle() {
        let mut sink = VecSink::new();
        let stall = TraceEvent::Stall {
            core: 3,
            cause: CycleCause::Barrier,
        };
        sink.emit_n(10, 4, stall);
        assert_eq!(
            sink.events,
            vec![(10, stall), (11, stall), (12, stall), (13, stall)]
        );
    }

    #[test]
    fn null_sink_reports_itself() {
        assert!(NullSink.is_null());
        assert!((&mut NullSink as &mut NullSink).is_null());
        assert!(!VecSink::new().is_null());
        assert!(!TextSink::new().is_null());
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let mut sink = VecSink::new();
        sink.emit(1, TraceEvent::Fork);
        sink.emit(2, TraceEvent::BarrierRelease);
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.events[0].0, 1);
    }

    #[test]
    fn text_sink_produces_one_line_per_event() {
        let mut sink = TextSink::new();
        sink.emit(1, TraceEvent::Fork);
        sink.emit(2, TraceEvent::BarrierArrive { core: 0 });
        let lines: Vec<&str> = sink.text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("arrive pe0"));
    }
}

//! Cycle-level cluster simulation.
//!
//! [`simulate`] runs a [`Program`] on the configured cluster and returns
//! [`SimStats`]. Every mechanism the paper identifies as relevant for the
//! energy/parallelism trade-off is modelled per cycle: TCDM bank conflicts,
//! shared-FPU arbitration, L2 latency, barrier sleep with clock gating,
//! OpenMP fork/join overhead and critical-section serialisation.

use crate::cause::CycleCause;
use crate::config::ClusterConfig;
use crate::dma::{DmaEngine, DmaTransfer};
use crate::event_unit::EventUnit;
use crate::fpu::FpuPool;
use crate::icache::refills_for_static_insns;
use crate::isa::{MicroOp, OpKind};
use crate::program::{Program, SegOp, Step, ValidateProgramError};
use crate::stats::SimStats;
use crate::tcdm::TcdmArbiter;
use crate::telemetry::{NoTelemetry, Telemetry};
use crate::trace::{NullSink, TraceEvent, TraceSink};
use std::fmt;

/// Default cycle budget before a run is declared hung.
pub const DEFAULT_MAX_CYCLES: u64 = 2_000_000_000;

/// Errors produced by [`simulate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The program failed structural validation.
    Validate(ValidateProgramError),
    /// The program requests more cores than the cluster has.
    TeamTooLarge {
        /// Cores requested by the program.
        requested: usize,
        /// Cores available in the cluster.
        available: usize,
    },
    /// A memory operation addressed neither TCDM nor L2.
    AddressOutOfRange {
        /// Issuing core.
        core: usize,
        /// Faulting byte address.
        addr: u32,
    },
    /// The run exceeded the cycle budget (likely deadlock).
    CycleLimit {
        /// The exhausted budget.
        budget: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Validate(e) => write!(f, "invalid program: {e}"),
            Self::TeamTooLarge {
                requested,
                available,
            } => {
                write!(
                    f,
                    "program needs {requested} cores but cluster has {available}"
                )
            }
            Self::AddressOutOfRange { core, addr } => {
                write!(f, "core {core}: address {addr:#010x} maps to no memory")
            }
            Self::CycleLimit { budget } => {
                write!(f, "cycle budget of {budget} exhausted (deadlock?)")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Validate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidateProgramError> for SimError {
    fn from(e: ValidateProgramError) -> Self {
        Self::Validate(e)
    }
}

/// Per-core scheduling state, kept as a bare tag.
///
/// The payloads the old enum carried (countdown, busy cause) live in the
/// parallel `left`/`cause` arrays of [`SimScratch`] — struct-of-arrays keeps
/// the hot loop's mode dispatch on a one-byte discriminant and lets the
/// horizon scan walk countdowns without destructuring.
///
/// Invariants: `Busy`/`Forking` imply `left[core] >= 1`; other modes ignore
/// `left`/`cause`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Ready,
    /// Finishing a multi-cycle operation; `left` cycles remain, attributed
    /// to `cause`.
    Busy,
    /// Master executing the fork runtime code for `left` more cycles.
    Forking,
    SleepBarrier,
    SleepFork,
    Finished,
}

/// Tuning knobs for a simulation run (see [`simulate_opts`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Cycle budget before the run is declared hung.
    pub max_cycles: u64,
    /// Enables the event-horizon fast-forward: when no core is `Ready`, the
    /// clock jumps to the next cycle at which any state transition is
    /// possible, attributing the skipped cycles in bulk. Every
    /// architectural result — [`SimStats`] counters, trace-event stream,
    /// downstream energy labels — is bit-identical either way; only the
    /// [`crate::stats::FastForwardStats`] diagnostics differ. Disable to
    /// run the single-step oracle (the differential tests do).
    pub fast_forward: bool,
    /// Adaptive horizon checks (on by default): the scan that computes the
    /// event horizon is skipped entirely while any core ended the previous
    /// iteration `Ready` on immediately runnable work — such a core pins
    /// the horizon to 1, so the scan provably cannot skip. The scan re-arms
    /// only on state transitions that could open a quiescent span: a core
    /// entering a countdown (`Busy`/`Forking`), going to sleep (barrier or
    /// fork wait), finishing, or parking on `DmaWait`. The set of scans
    /// that *skip* is identical to the always-scan strategy, so spans,
    /// skipped cycles and all architectural results are bit-identical; only
    /// `horizon_computations` shrinks (ALU-bound programs drop from one
    /// scan per cycle to ~one per run). Disable to scan every iteration —
    /// the re-arm coverage property tests use that as their reference.
    pub adaptive_scan: bool,
    /// Measures the wall-time split between the horizon scan and stepped
    /// execution (`horizon_scan_nanos`/`step_nanos` in
    /// [`crate::stats::FastForwardStats`]). Off by default: clock reads
    /// perturb throughput runs, so benchmarks take a separate instrumented
    /// run for the split. To keep the observer effect out of the measured
    /// split itself, timing is *sampled*: one in
    /// [`TIMING_SAMPLE_PERIOD`] scan/step events is clocked (the first
    /// always is) and the totals are scaled up by the event count at the
    /// end, so short runs still report a non-zero split while long runs pay
    /// two clock reads per 32 events instead of per iteration.
    pub horizon_timing: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            max_cycles: DEFAULT_MAX_CYCLES,
            fast_forward: true,
            adaptive_scan: true,
            horizon_timing: false,
        }
    }
}

impl SimOptions {
    /// The single-step oracle configuration: fast-forward disabled,
    /// default cycle budget.
    pub fn oracle() -> Self {
        Self {
            fast_forward: false,
            ..Self::default()
        }
    }

    /// Replaces the cycle budget.
    #[must_use]
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// Enables the horizon-overhead wall-time split.
    #[must_use]
    pub fn with_horizon_timing(mut self, horizon_timing: bool) -> Self {
        self.horizon_timing = horizon_timing;
        self
    }

    /// Toggles the adaptive horizon-scan gating (see
    /// [`SimOptions::adaptive_scan`]).
    #[must_use]
    pub fn with_adaptive_scan(mut self, adaptive_scan: bool) -> Self {
        self.adaptive_scan = adaptive_scan;
        self
    }
}

/// One in this many `horizon_timing` scan/step events is actually clocked;
/// the first event of each kind always is. See
/// [`SimOptions::horizon_timing`].
const TIMING_SAMPLE_PERIOD: u64 = 32;

/// Scales a sampled nano total up to the full event count
/// (`raw * events / timed`, in u128 to avoid overflow).
fn scale_sampled_nanos(raw: u64, events: u64, timed: u64) -> u64 {
    if timed == 0 {
        0
    } else {
        (u128::from(raw) * u128::from(events) / u128::from(timed)) as u64
    }
}

/// Reusable per-run working memory for [`simulate_opts`].
///
/// A labelling sweep runs the same kernel at up to 8 team sizes back to
/// back; handing the same scratch to each run reuses the per-core state
/// vectors (core modes, fork sequence numbers, clock-gating flags) instead
/// of reallocating them. A scratch carries no state between runs — it is
/// fully reinitialised on entry — so reuse is purely an allocation saving.
#[derive(Debug, Default)]
pub struct SimScratch {
    // Struct-of-arrays core state: `modes` is the one-byte dispatch tag the
    // hot loop switches on; `left` and `cause` carry the countdown payload
    // for `Busy`/`Forking` cores so the horizon scan and bulk advance walk
    // flat integer arrays.
    modes: Vec<Mode>,
    left: Vec<u32>,
    cause: Vec<CycleCause>,
    forks_seen: Vec<u64>,
    cg_open: Vec<bool>,
    /// Precomputed per-core FPU index (`ClusterConfig::fpu_of` hoisted out
    /// of the issue path).
    fpu_of: Vec<usize>,
}

impl SimScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn prepare(&mut self, team: usize, config: &ClusterConfig) {
        self.modes.clear();
        self.modes.resize(team, Mode::Ready);
        self.left.clear();
        self.left.resize(team, 0);
        self.cause.clear();
        self.cause.resize(team, CycleCause::Idle);
        self.forks_seen.clear();
        self.forks_seen.resize(team, 0);
        self.cg_open.clear();
        self.cg_open.resize(config.num_cores, false);
        self.fpu_of.clear();
        self.fpu_of.extend((0..team).map(|c| config.fpu_of(c)));
    }
}

/// Runs `program` on the cluster described by `config`, collecting stats.
///
/// Convenience wrapper over [`simulate_traced`] using a [`NullSink`] and the
/// default cycle budget.
///
/// # Errors
///
/// See [`simulate_traced`].
pub fn simulate(config: &ClusterConfig, program: &Program) -> Result<SimStats, SimError> {
    simulate_traced(config, program, DEFAULT_MAX_CYCLES, &mut NullSink)
}

/// Runs `program` on the cluster, streaming trace events into `sink`.
///
/// Convenience wrapper over [`simulate_instrumented`] with no telemetry.
///
/// # Errors
///
/// See [`simulate_instrumented`].
pub fn simulate_traced<S: TraceSink>(
    config: &ClusterConfig,
    program: &Program,
    max_cycles: u64,
    sink: &mut S,
) -> Result<SimStats, SimError> {
    simulate_instrumented(config, program, max_cycles, sink, &mut NoTelemetry)
}

/// Runs `program` on the cluster with trace and telemetry observers.
///
/// Cores `0..program.num_cores()` execute the program streams; remaining
/// cluster cores are clock-gated for the whole run (their leakage and
/// gating energy still counts, which is what makes small team sizes pay for
/// the silicon they do not use).
///
/// `telemetry` receives one [`Telemetry::on_cycle`] call per team/cluster
/// core per cycle with the cycle's exclusive [`CycleCause`], plus fork and
/// barrier-release region boundaries. Pass [`NoTelemetry`] (or use
/// [`simulate_traced`]) for the zero-cost path.
///
/// # Errors
///
/// Returns an error if the program is structurally invalid, requests more
/// cores than available, touches an unmapped address, or fails to finish
/// within `max_cycles`.
pub fn simulate_instrumented<S: TraceSink, T: Telemetry>(
    config: &ClusterConfig,
    program: &Program,
    max_cycles: u64,
    sink: &mut S,
    telemetry: &mut T,
) -> Result<SimStats, SimError> {
    simulate_opts(
        config,
        program,
        &SimOptions::default().with_max_cycles(max_cycles),
        sink,
        telemetry,
        &mut SimScratch::new(),
    )
}

/// Runs `program` on the cluster with explicit [`SimOptions`] and a caller-
/// provided [`SimScratch`].
///
/// This is the full-control entry point behind every other `simulate_*`
/// wrapper. `opts.fast_forward` selects between the event-horizon
/// fast-forward (default; bulk-advances over quiescent spans) and the
/// single-step oracle; both produce bit-identical architectural results.
/// `scratch` is reinitialised on entry and may be reused across runs to
/// avoid reallocating per-core state.
///
/// # Errors
///
/// See [`simulate_instrumented`].
pub fn simulate_opts<S: TraceSink, T: Telemetry>(
    config: &ClusterConfig,
    program: &Program,
    opts: &SimOptions,
    sink: &mut S,
    telemetry: &mut T,
    scratch: &mut SimScratch,
) -> Result<SimStats, SimError> {
    let max_cycles = opts.max_cycles;
    program.validate()?;
    let team = program.num_cores();
    if team > config.num_cores {
        return Err(SimError::TeamTooLarge {
            requested: team,
            available: config.num_cores,
        });
    }
    if team == 0 {
        let mut stats = SimStats::new(config.num_cores, config.tcdm_banks, config.l2_banks);
        stats.team_size = 0;
        telemetry.on_finish(0);
        return Ok(stats);
    }

    let mut stats = SimStats::new(config.num_cores, config.tcdm_banks, config.l2_banks);
    stats.team_size = team;

    let mut cursors: Vec<_> = (0..team)
        .map(|c| crate::program::Cursor::new(program, c))
        .collect();
    scratch.prepare(team, config);
    let SimScratch {
        modes,
        left,
        cause,
        forks_seen,
        cg_open,
        fpu_of,
    } = scratch;

    let mut eu = EventUnit::new(team);
    let mut dma = DmaEngine::new();
    let mut arbiter = TcdmArbiter::new(config.tcdm_banks, config.model_bank_conflicts);
    // The cluster reaches L2 through a single port: one new access may be
    // issued per cycle (accesses are pipelined, so latency still overlaps
    // across cores).
    let mut l2_port = TcdmArbiter::new(1, true);
    let mut fpus = FpuPool::new(
        config.num_fpus,
        config.model_fpu_contention,
        config.fpu_latency,
        config.fp_div_latency,
    );

    // Total master-side cycles per fork: base plus per-worker signalling.
    let fork_cycles =
        config.fork_latency + config.fork_per_worker * (team.saturating_sub(1)) as u32;

    let mut cycle: u64 = 0;
    // Cores in `Mode::Finished`; they never leave it, so an O(1) counter
    // replaces the per-iteration all-finished scan.
    let mut finished = 0usize;
    // The adaptive-scan arm flag: `true` while no core is provably `Ready`
    // on immediately runnable work, i.e. while a horizon scan *could* find
    // a skippable span. Each stepped iteration recomputes it from the
    // transitions it performs (see `SimOptions::adaptive_scan`); a bulk
    // advance always leaves the woken state worth scanning again.
    let mut scan_armed = true;
    // Sampled-timing state (see `SimOptions::horizon_timing`): raw nanos and
    // how many of the events were clocked, scaled to the full event counts
    // after the run.
    let mut scan_nanos_raw = 0u64;
    let mut scan_timed = 0u64;
    let mut step_events = 0u64;
    let mut step_nanos_raw = 0u64;
    let mut step_timed = 0u64;
    loop {
        if finished == team {
            break;
        }
        if cycle >= max_cycles {
            return Err(SimError::CycleLimit { budget: max_cycles });
        }

        if opts.fast_forward && (scan_armed || !opts.adaptive_scan) {
            let scan_t0 = (opts.horizon_timing
                && stats
                    .fast_forward
                    .horizon_computations
                    .is_multiple_of(TIMING_SAMPLE_PERIOD))
            .then(std::time::Instant::now);
            let h = event_horizon(
                &mut cursors,
                modes,
                left,
                forks_seen,
                &eu,
                &dma,
                cycle,
                max_cycles,
            );
            if let Some(t0) = scan_t0 {
                scan_nanos_raw += t0.elapsed().as_nanos() as u64;
                scan_timed += 1;
            }
            stats.fast_forward.horizon_computations += 1;
            if h > 1 {
                stats.fast_forward.horizon_skips += 1;
                bulk_advance(
                    config, &mut stats, modes, left, cause, cg_open, &mut eu, sink, telemetry,
                    cycle, h,
                );
                cycle += h;
                continue;
            }
        }
        let step_t0 = (opts.horizon_timing && step_events.is_multiple_of(TIMING_SAMPLE_PERIOD))
            .then(std::time::Instant::now);
        step_events += 1;

        let mut barrier_release = false;
        let mut any_active = false;
        // Cores ending this iteration `Ready` on a step that can issue next
        // cycle; zero re-arms the horizon scan.
        let mut ready_next = 0usize;

        for core in 0..team {
            match modes[core] {
                Mode::Finished => {
                    count_sleep(
                        config,
                        &mut stats,
                        cg_open,
                        sink,
                        telemetry,
                        cycle,
                        core,
                        CycleCause::Idle,
                    );
                }
                Mode::Busy => {
                    stall(&mut stats, sink, telemetry, cycle, core, cause[core]);
                    any_active = true;
                    let l = left[core].saturating_sub(1);
                    left[core] = l;
                    if l == 0 {
                        modes[core] = Mode::Ready;
                        ready_next += usize::from(!cursors[core].next_is_dma_wait());
                    }
                }
                Mode::Forking => {
                    stall(
                        &mut stats,
                        sink,
                        telemetry,
                        cycle,
                        core,
                        CycleCause::Runtime,
                    );
                    any_active = true;
                    let l = left[core].saturating_sub(1);
                    left[core] = l;
                    if l == 0 {
                        eu.signal_fork();
                        telemetry.on_fork(cycle);
                        sink.emit(cycle, TraceEvent::Fork);
                        cursors[core].advance();
                        modes[core] = Mode::Ready;
                        ready_next += usize::from(!cursors[core].next_is_dma_wait());
                    }
                }
                Mode::SleepBarrier => {
                    count_sleep(
                        config,
                        &mut stats,
                        cg_open,
                        sink,
                        telemetry,
                        cycle,
                        core,
                        CycleCause::Barrier,
                    );
                }
                Mode::SleepFork => {
                    if eu.fork_ready(forks_seen[core]) {
                        // Wake: this cycle is the dispatch cycle.
                        if cg_open[core] {
                            cg_open[core] = false;
                            sink.emit(cycle, TraceEvent::CgExit { core });
                        }
                        forks_seen[core] += 1;
                        cursors[core].advance();
                        stall(
                            &mut stats,
                            sink,
                            telemetry,
                            cycle,
                            core,
                            CycleCause::Runtime,
                        );
                        any_active = true;
                        modes[core] = Mode::Ready;
                        ready_next += usize::from(!cursors[core].next_is_dma_wait());
                    } else {
                        count_sleep(
                            config,
                            &mut stats,
                            cg_open,
                            sink,
                            telemetry,
                            cycle,
                            core,
                            CycleCause::ForkWait,
                        );
                    }
                }
                Mode::Ready => {
                    let step = cursors[core].current();
                    if step == Step::Done {
                        modes[core] = Mode::Finished;
                        finished += 1;
                        count_sleep(
                            config,
                            &mut stats,
                            cg_open,
                            sink,
                            telemetry,
                            cycle,
                            core,
                            CycleCause::Idle,
                        );
                        continue;
                    }
                    any_active = true;
                    let ready = step_core(
                        config,
                        fork_cycles,
                        &mut stats,
                        &mut cursors,
                        modes,
                        left,
                        cause,
                        forks_seen,
                        cg_open,
                        fpu_of,
                        &mut eu,
                        &mut dma,
                        &mut arbiter,
                        &mut l2_port,
                        &mut fpus,
                        &mut barrier_release,
                        sink,
                        telemetry,
                        cycle,
                        core,
                        step,
                    )?;
                    ready_next += usize::from(ready);
                }
            }
        }

        // Unused physical cores are clock-gated for the whole run.
        for core in team..config.num_cores {
            count_sleep(
                config,
                &mut stats,
                cg_open,
                sink,
                telemetry,
                cycle,
                core,
                CycleCause::Idle,
            );
        }

        if barrier_release {
            eu.schedule_release(config.barrier_latency);
        }
        if eu.tick_release() {
            stats.barriers += 1;
            telemetry.on_barrier_release(cycle);
            sink.emit(cycle, TraceEvent::BarrierRelease);
            for core in 0..team {
                if modes[core] == Mode::SleepBarrier {
                    if cg_open[core] {
                        cg_open[core] = false;
                        sink.emit(cycle + 1, TraceEvent::CgExit { core });
                    }
                    cursors[core].advance();
                    modes[core] = Mode::Ready;
                    ready_next += usize::from(!cursors[core].next_is_dma_wait());
                }
            }
            eu.release_barrier();
        }

        if any_active || !config.model_clock_gating {
            stats.cluster_active_cycles += 1;
        }
        scan_armed = ready_next == 0;
        if let Some(t0) = step_t0 {
            step_nanos_raw += t0.elapsed().as_nanos() as u64;
            step_timed += 1;
        }
        cycle += 1;
    }
    if opts.horizon_timing {
        stats.fast_forward.horizon_scan_nanos = scale_sampled_nanos(
            scan_nanos_raw,
            stats.fast_forward.horizon_computations,
            scan_timed,
        );
        stats.fast_forward.step_nanos =
            scale_sampled_nanos(step_nanos_raw, step_events, step_timed);
    }

    // Close dangling clock-gating regions for the listeners.
    for (core, open) in cg_open.iter().enumerate().take(config.num_cores) {
        if *open {
            sink.emit(cycle, TraceEvent::CgExit { core });
        }
    }

    stats.cycles = cycle;
    stats.dma.words_transferred = dma.words_transferred();
    stats.dma.busy_cycles = dma.busy_cycles();
    stats.icache.fetches = stats.cores.iter().map(|c| c.fetches).sum();
    stats.icache.refills = (0..team)
        .map(|c| {
            let static_insns = program
                .stream(c)
                .iter()
                .filter(|s| matches!(s, SegOp::Instr { .. }))
                .count();
            refills_for_static_insns(static_insns as u64)
        })
        .sum();
    sink.emit(
        cycle,
        TraceEvent::IcacheRefill {
            count: stats.icache.refills,
        },
    );
    telemetry.on_finish(cycle);
    debug_assert_eq!(stats.check_consistency(), Ok(()));
    Ok(stats)
}

/// Accounts one active-wait cycle for `core`, attributed to `cause`.
fn stall<S: TraceSink, T: Telemetry>(
    stats: &mut SimStats,
    sink: &mut S,
    telemetry: &mut T,
    cycle: u64,
    core: usize,
    cause: CycleCause,
) {
    stats.cores[core].idle_cycles += 1;
    stats.cores[core].breakdown.add(cause);
    telemetry.on_cycle(cycle, core, cause);
    sink.emit(cycle, TraceEvent::Stall { core, cause });
}

/// Accounts one sleeping cycle for `core`, routed to clock gating or active
/// wait depending on the configuration's ablation switch. The cause tags
/// the whole gating region (emitted once, on `CgEnter`): a sleeping core's
/// reason cannot change until it wakes, which closes the region.
#[allow(clippy::too_many_arguments)]
fn count_sleep<S: TraceSink, T: Telemetry>(
    config: &ClusterConfig,
    stats: &mut SimStats,
    cg_open: &mut [bool],
    sink: &mut S,
    telemetry: &mut T,
    cycle: u64,
    core: usize,
    cause: CycleCause,
) {
    if config.model_clock_gating {
        if !cg_open[core] {
            cg_open[core] = true;
            sink.emit(cycle, TraceEvent::CgEnter { core, cause });
        }
        stats.cores[core].cg_cycles += 1;
        stats.cores[core].breakdown.add(cause);
        telemetry.on_cycle(cycle, core, cause);
    } else {
        stall(stats, sink, telemetry, cycle, core, cause);
    }
}

/// Number of cycles from `cycle` during which no core can change state: the
/// event-horizon the fast-forward may jump in one step.
///
/// A returned horizon `h` guarantees that for every cycle in
/// `[cycle, cycle + h)` the single-step loop would do nothing but count a
/// stall or sleep cycle per core — no retirement, no fork signal, no
/// barrier arrival or release, no DMA completion, no cursor movement. Any
/// cycle where something *can* happen is left to the single-step path, so
/// the horizon is 1 whenever:
///
/// - any core is `Ready` on real work (TCDM/FPU/L2 arbitration only
///   contends among ready cores, so a ready core pins the horizon), or
/// - a multi-cycle op, fork runtime, DMA wait or barrier-release countdown
///   expires on the very next cycle.
#[allow(clippy::too_many_arguments)]
fn event_horizon(
    cursors: &mut [crate::program::Cursor<'_>],
    modes: &[Mode],
    left: &[u32],
    forks_seen: &[u64],
    eu: &EventUnit,
    dma: &DmaEngine,
    cycle: u64,
    max_cycles: u64,
) -> u64 {
    // Never jump past the cycle budget: the limit check must still fire.
    let mut h = max_cycles - cycle;
    // The barrier-release firing cycle wakes sleepers; run it single-step.
    if let Some(k) = eu.release_in() {
        h = h.min(u64::from(k).max(1));
    }
    for (core, mode) in modes.iter().enumerate() {
        let quiet = match *mode {
            // A ready core issues this cycle — unless it is parked on a
            // blocking `DmaWait`, which provably spins until the engine
            // drains.
            Mode::Ready => {
                if cursors[core].next_is_dma_wait() {
                    dma.free_at().saturating_sub(cycle)
                } else {
                    0
                }
            }
            Mode::Busy => u64::from(left[core]),
            // The final fork-runtime cycle signals the fork; keep it
            // single-step.
            Mode::Forking => u64::from(left[core]) - 1,
            Mode::SleepFork => {
                if eu.fork_ready(forks_seen[core]) {
                    0
                } else {
                    u64::MAX
                }
            }
            // Woken only by events already bounded above (barrier release),
            // or never.
            Mode::SleepBarrier | Mode::Finished => u64::MAX,
        };
        if quiet < h {
            h = quiet;
        }
        if h <= 1 {
            return 1;
        }
    }
    h
}

/// The per-cycle accounting class of `core` during a quiescent span: the
/// [`CycleCause`] its cycles are attributed to and whether it is sleeping
/// (eligible for clock gating) or actively waiting.
///
/// Mirrors exactly what the single-step loop does for each mode when no
/// state transition occurs; `Mode::Ready` inside a span is only ever a core
/// spinning on `DmaWait` (guaranteed by [`event_horizon`]).
fn bulk_class(
    modes: &[Mode],
    cause: &[CycleCause],
    team: usize,
    core: usize,
) -> (CycleCause, bool) {
    if core >= team {
        return (CycleCause::Idle, true);
    }
    match modes[core] {
        Mode::Busy => (cause[core], false),
        Mode::Forking => (CycleCause::Runtime, false),
        Mode::Ready => (CycleCause::Dma, false),
        Mode::SleepBarrier => (CycleCause::Barrier, true),
        Mode::SleepFork => (CycleCause::ForkWait, true),
        Mode::Finished => (CycleCause::Idle, true),
    }
}

/// Advances the simulation by `n` quiescent cycles in one step.
///
/// Replays the trace events the single-step loop would have emitted (in the
/// same cycle-major, core-minor order), bulk-updates the per-core stats and
/// telemetry, decrements the countdown modes and the pending barrier
/// release, and books the span in [`crate::stats::FastForwardStats`].
#[allow(clippy::too_many_arguments)]
fn bulk_advance<S: TraceSink, T: Telemetry>(
    config: &ClusterConfig,
    stats: &mut SimStats,
    modes: &mut [Mode],
    left: &mut [u32],
    cause: &mut [CycleCause],
    cg_open: &mut [bool],
    eu: &mut EventUnit,
    sink: &mut S,
    telemetry: &mut T,
    cycle: u64,
    n: u64,
) {
    let team = modes.len();

    // Trace replay must happen before any state mutation so `bulk_class`
    // and `cg_open` still describe the span's first cycle.
    if !sink.is_null() {
        let mut emitters = 0usize;
        let mut pending_cg = 0usize;
        for (core, open) in cg_open.iter().enumerate().take(config.num_cores) {
            let (_, sleeping) = bulk_class(modes, cause, team, core);
            if sleeping && config.model_clock_gating {
                if !open {
                    pending_cg += 1;
                }
            } else {
                emitters += 1;
            }
        }
        if emitters == 1 && pending_cg == 0 {
            // Single stalling core, everyone else already gated: the span's
            // whole event stream is one repeated `Stall`.
            for core in 0..config.num_cores {
                let (cause, sleeping) = bulk_class(modes, cause, team, core);
                if !(sleeping && config.model_clock_gating) {
                    sink.emit_n(cycle, n, TraceEvent::Stall { core, cause });
                }
            }
        } else {
            // Gated sleepers emit only their `CgEnter` on the first span
            // cycle; if nobody emits per cycle, one pass suffices.
            let cycles = if emitters > 0 { n } else { 1 };
            for i in 0..cycles {
                for (core, open) in cg_open.iter().enumerate().take(config.num_cores) {
                    let (cause, sleeping) = bulk_class(modes, cause, team, core);
                    if sleeping && config.model_clock_gating {
                        if i == 0 && !open {
                            sink.emit(cycle, TraceEvent::CgEnter { core, cause });
                        }
                    } else {
                        sink.emit(cycle + i, TraceEvent::Stall { core, cause });
                    }
                }
            }
        }
    }

    let mut any_active = false;
    for core in 0..config.num_cores {
        let (span_cause, sleeping) = bulk_class(modes, cause, team, core);
        if sleeping && config.model_clock_gating {
            cg_open[core] = true;
            stats.cores[core].cg_cycles += n;
        } else {
            stats.cores[core].idle_cycles += n;
        }
        if !sleeping {
            any_active = true;
        }
        stats.cores[core].breakdown.add_n(span_cause, n);
        telemetry.advance_n(cycle, core, n, span_cause);
        if core < team {
            match modes[core] {
                Mode::Busy => {
                    // The horizon is the minimum over all countdowns, so a
                    // span can at most *exactly* consume a Busy countdown.
                    debug_assert!(
                        n <= u64::from(left[core]),
                        "bulk advance of {n} cycles overshoots core {core}'s Busy \
                         countdown of {} — event_horizon must never exceed the \
                         shortest countdown",
                        left[core]
                    );
                    let l = left[core].saturating_sub(n as u32);
                    left[core] = l;
                    if l == 0 {
                        modes[core] = Mode::Ready;
                    }
                }
                Mode::Forking => {
                    // Forking contributes `left - 1` to the horizon: the
                    // fork-signal cycle itself must run single-step, so a
                    // span always leaves at least one Forking cycle.
                    debug_assert!(
                        n < u64::from(left[core]),
                        "bulk advance of {n} cycles overshoots core {core}'s Forking \
                         countdown of {} — the fork-signal cycle must run single-step",
                        left[core]
                    );
                    left[core] = left[core].saturating_sub(n as u32).max(1);
                }
                _ => {}
            }
        }
    }
    eu.skip_release_wait(n);
    if any_active || !config.model_clock_gating {
        stats.cluster_active_cycles += n;
    }
    stats.fast_forward.spans += 1;
    stats.fast_forward.skipped_cycles += n;
}

/// Executes one `Ready`-mode step for `core` and returns whether the core
/// ends the cycle `Ready` on immediately runnable work (the contribution to
/// the adaptive scan's re-arm count): `true` for any outcome that leaves the
/// core able to issue next cycle — retire with latency 1, a contention
/// retry, an immediate fork — and `false` when it enters a countdown, goes
/// to sleep, or rests on a `DmaWait`.
#[allow(clippy::too_many_arguments)]
fn step_core<S: TraceSink, T: Telemetry>(
    config: &ClusterConfig,
    fork_cycles: u32,
    stats: &mut SimStats,
    cursors: &mut [crate::program::Cursor<'_>],
    modes: &mut [Mode],
    left: &mut [u32],
    cause: &mut [CycleCause],
    forks_seen: &mut [u64],
    cg_open: &mut [bool],
    fpu_of: &[usize],
    eu: &mut EventUnit,
    dma: &mut DmaEngine,
    arbiter: &mut TcdmArbiter,
    l2_port: &mut TcdmArbiter,
    fpus: &mut FpuPool,
    barrier_release: &mut bool,
    sink: &mut S,
    telemetry: &mut T,
    cycle: u64,
    core: usize,
    step: Step,
) -> Result<bool, SimError> {
    match step {
        // Completion is detected by the main loop before dispatching here.
        Step::Done => unreachable!("step_core called on a finished cursor"),
        Step::Op(op) => {
            return exec_op(
                config, stats, cursors, modes, left, cause, fpu_of, arbiter, l2_port, fpus, sink,
                telemetry, cycle, core, op,
            );
        }
        Step::Barrier => {
            sink.emit(cycle, TraceEvent::BarrierArrive { core });
            stall(stats, sink, telemetry, cycle, core, CycleCause::Barrier);
            modes[core] = Mode::SleepBarrier;
            if eu.arrive(core) {
                *barrier_release = true;
            }
        }
        Step::Fork => {
            stall(stats, sink, telemetry, cycle, core, CycleCause::Runtime);
            if fork_cycles <= 1 {
                eu.signal_fork();
                telemetry.on_fork(cycle);
                sink.emit(cycle, TraceEvent::Fork);
                cursors[core].advance();
                return Ok(!cursors[core].next_is_dma_wait());
            }
            modes[core] = Mode::Forking;
            left[core] = fork_cycles - 1;
        }
        Step::WaitFork => {
            if eu.fork_ready(forks_seen[core]) {
                forks_seen[core] += 1;
                cursors[core].advance();
                stall(stats, sink, telemetry, cycle, core, CycleCause::Runtime);
                return Ok(!cursors[core].next_is_dma_wait());
            }
            modes[core] = Mode::SleepFork;
            // This cycle already counts as sleeping.
            if config.model_clock_gating {
                cg_open[core] = true;
                sink.emit(
                    cycle,
                    TraceEvent::CgEnter {
                        core,
                        cause: CycleCause::ForkWait,
                    },
                );
                stats.cores[core].cg_cycles += 1;
                stats.cores[core].breakdown.add(CycleCause::ForkWait);
                telemetry.on_cycle(cycle, core, CycleCause::ForkWait);
                return Ok(false);
            }
            stall(stats, sink, telemetry, cycle, core, CycleCause::ForkWait);
        }
        Step::CriticalBegin => {
            if eu.try_lock(core) {
                retire(stats, sink, telemetry, cycle, core, OpKind::Alu, None);
                stats.cores[core].alu_ops += 1;
                cursors[core].advance();
                return Ok(!cursors[core].next_is_dma_wait());
            }
            // Lock spin: retries next cycle.
            stall(stats, sink, telemetry, cycle, core, CycleCause::Runtime);
            return Ok(true);
        }
        Step::CriticalEnd => {
            eu.unlock(core);
            retire(stats, sink, telemetry, cycle, core, OpKind::Alu, None);
            stats.cores[core].alu_ops += 1;
            cursors[core].advance();
            return Ok(!cursors[core].next_is_dma_wait());
        }
        Step::Dma { words, inbound } => {
            // Blocking transfer: the issuing core programs the engine and
            // actively waits for completion.
            let t = if inbound {
                DmaTransfer::inbound(words)
            } else {
                DmaTransfer::outbound(words)
            };
            let busy = dma.schedule(cycle, t) as u32;
            sink.emit(cycle, TraceEvent::Dma { words, inbound });
            stall(stats, sink, telemetry, cycle, core, CycleCause::Dma);
            cursors[core].advance();
            if busy > 1 {
                modes[core] = Mode::Busy;
                left[core] = busy - 1;
                cause[core] = CycleCause::Dma;
                return Ok(false);
            }
            return Ok(!cursors[core].next_is_dma_wait());
        }
        Step::DmaAsync { words, inbound } => {
            if dma.busy_at(cycle) {
                // Engine still streaming a previous transfer: retry.
                stall(stats, sink, telemetry, cycle, core, CycleCause::Dma);
                return Ok(true);
            }
            let t = if inbound {
                DmaTransfer::inbound(words)
            } else {
                DmaTransfer::outbound(words)
            };
            dma.schedule(cycle, t);
            sink.emit(cycle, TraceEvent::Dma { words, inbound });
            // One cycle to program the engine; the core then continues.
            stall(stats, sink, telemetry, cycle, core, CycleCause::Dma);
            cursors[core].advance();
            return Ok(!cursors[core].next_is_dma_wait());
        }
        Step::DmaWait => {
            stall(stats, sink, telemetry, cycle, core, CycleCause::Dma);
            if !dma.busy_at(cycle) {
                cursors[core].advance();
                return Ok(!cursors[core].next_is_dma_wait());
            }
            // Still draining: the core rests on `DmaWait`, which must not
            // pin the horizon.
            return Ok(false);
        }
    }
    Ok(false)
}

/// Records the fetch + trace event shared by every retirement path.
fn retire<S: TraceSink, T: Telemetry>(
    stats: &mut SimStats,
    sink: &mut S,
    telemetry: &mut T,
    cycle: u64,
    core: usize,
    kind: OpKind,
    addr: Option<u32>,
) {
    stats.cores[core].fetches += 1;
    stats.cores[core].breakdown.add(CycleCause::Execute);
    telemetry.on_cycle(cycle, core, CycleCause::Execute);
    sink.emit(cycle, TraceEvent::Insn { core, kind, addr });
}

/// Executes one micro-op for `core`; returns the ready-immediate flag with
/// the same contract as [`step_core`].
#[allow(clippy::too_many_arguments)]
fn exec_op<S: TraceSink, T: Telemetry>(
    config: &ClusterConfig,
    stats: &mut SimStats,
    cursors: &mut [crate::program::Cursor<'_>],
    modes: &mut [Mode],
    left: &mut [u32],
    cause: &mut [CycleCause],
    fpu_of: &[usize],
    arbiter: &mut TcdmArbiter,
    l2_port: &mut TcdmArbiter,
    fpus: &mut FpuPool,
    sink: &mut S,
    telemetry: &mut T,
    cycle: u64,
    core: usize,
    op: MicroOp,
) -> Result<bool, SimError> {
    // An executing core is never clock-gated; CG flags are managed by the
    // sleep paths. `finish` consumes the step and schedules any multi-cycle
    // tail as Busy time attributed to `tail_cause`; it reports whether the
    // core stays immediately runnable (single-cycle retire not resting on
    // `DmaWait`).
    let mut finish = |cursors: &mut [crate::program::Cursor<'_>],
                      latency: u32,
                      tail_cause: CycleCause|
     -> bool {
        cursors[core].advance();
        if latency > 1 {
            modes[core] = Mode::Busy;
            left[core] = latency - 1;
            cause[core] = tail_cause;
            return false;
        }
        !cursors[core].next_is_dma_wait()
    };
    let ready = match op.kind {
        OpKind::Alu => {
            stats.cores[core].alu_ops += 1;
            retire(stats, sink, telemetry, cycle, core, op.kind, None);
            finish(cursors, 1, CycleCause::ExecTail)
        }
        OpKind::Mul => {
            stats.cores[core].alu_ops += 1;
            retire(stats, sink, telemetry, cycle, core, op.kind, None);
            finish(cursors, config.mul_latency, CycleCause::ExecTail)
        }
        OpKind::Div => {
            stats.cores[core].alu_ops += 1;
            retire(stats, sink, telemetry, cycle, core, op.kind, None);
            finish(cursors, config.int_div_latency, CycleCause::ExecTail)
        }
        OpKind::Branch | OpKind::Jump => {
            stats.cores[core].alu_ops += 1;
            retire(stats, sink, telemetry, cycle, core, op.kind, None);
            finish(
                cursors,
                1 + config.taken_branch_penalty,
                CycleCause::ExecTail,
            )
        }
        OpKind::Nop => {
            stats.cores[core].nop_ops += 1;
            retire(stats, sink, telemetry, cycle, core, op.kind, None);
            finish(cursors, 1, CycleCause::ExecTail)
        }
        OpKind::Fp(f) => {
            let fpu = fpu_of[core];
            match fpus.try_issue(fpu, f, cycle) {
                Some(issue) => {
                    stats.cores[core].fp_ops += 1;
                    retire(stats, sink, telemetry, cycle, core, op.kind, None);
                    finish(cursors, issue.core_busy, CycleCause::ExecTail)
                }
                None => {
                    stall(
                        stats,
                        sink,
                        telemetry,
                        cycle,
                        core,
                        CycleCause::FpuContention,
                    );
                    // Arbitration retry next cycle.
                    true
                }
            }
        }
        OpKind::Load | OpKind::Store => {
            let addr = op.addr.expect("memory op without address");
            let write = op.kind == OpKind::Store;
            if config.is_tcdm(addr) {
                let bank = config.tcdm_bank_of(addr);
                if arbiter.try_access(bank, cycle) {
                    stats.cores[core].l1_ops += 1;
                    if write {
                        stats.l1_banks[bank].writes += 1;
                    } else {
                        stats.l1_banks[bank].reads += 1;
                    }
                    sink.emit(cycle, TraceEvent::L1Access { bank, write });
                    retire(stats, sink, telemetry, cycle, core, op.kind, Some(addr));
                    finish(cursors, 1, CycleCause::ExecTail)
                } else {
                    stats.l1_banks[bank].conflicts += 1;
                    sink.emit(cycle, TraceEvent::L1Conflict { bank });
                    stall(
                        stats,
                        sink,
                        telemetry,
                        cycle,
                        core,
                        CycleCause::TcdmConflict,
                    );
                    // Arbitration retry next cycle.
                    true
                }
            } else if config.is_l2(addr) {
                if !l2_port.try_access(0, cycle) {
                    stall(stats, sink, telemetry, cycle, core, CycleCause::L2Wait);
                    // Port retry next cycle.
                    return Ok(true);
                }
                let bank = config.l2_bank_of(addr);
                stats.cores[core].l2_ops += 1;
                if write {
                    stats.l2_banks[bank].writes += 1;
                } else {
                    stats.l2_banks[bank].reads += 1;
                }
                sink.emit(cycle, TraceEvent::L2Access { bank, write });
                retire(stats, sink, telemetry, cycle, core, op.kind, Some(addr));
                finish(cursors, config.l2_latency, CycleCause::L2Wait)
            } else {
                return Err(SimError::AddressOutOfRange { core, addr });
            }
        }
    };
    Ok(ready)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{L2_BASE, TCDM_BASE};
    use crate::program::AddrExpr;

    fn instr(kind: OpKind) -> SegOp {
        SegOp::Instr { kind, addr: None }
    }

    fn load(addr: u32) -> SegOp {
        SegOp::Instr {
            kind: OpKind::Load,
            addr: Some(AddrExpr::constant(addr)),
        }
    }

    fn store(addr: u32) -> SegOp {
        SegOp::Instr {
            kind: OpKind::Store,
            addr: Some(AddrExpr::constant(addr)),
        }
    }

    fn cfg() -> ClusterConfig {
        ClusterConfig::default()
    }

    #[test]
    fn single_alu_program() {
        let p = Program::new(vec![vec![instr(OpKind::Alu)]]);
        let s = simulate(&cfg(), &p).expect("simulate");
        assert_eq!(s.cores[0].alu_ops, 1);
        assert_eq!(s.cycles, 2); // 1 execute + 1 finish/park cycle
        assert!(s.check_consistency().is_ok());
        // The 7 unused cores are clock-gated throughout.
        assert_eq!(s.cores[7].cg_cycles, s.cycles);
    }

    #[test]
    fn empty_team_is_a_noop() {
        let p = Program::new(vec![]);
        let s = simulate(&cfg(), &p).expect("simulate");
        assert_eq!(s.cycles, 0);
        assert_eq!(s.team_size, 0);
    }

    #[test]
    fn tcdm_load_is_single_cycle() {
        let p = Program::new(vec![vec![load(TCDM_BASE), load(TCDM_BASE + 4)]]);
        let s = simulate(&cfg(), &p).expect("simulate");
        assert_eq!(s.cores[0].l1_ops, 2);
        assert_eq!(s.l1_reads(), 2);
        assert_eq!(s.l1_conflicts(), 0);
        assert_eq!(s.cycles, 3);
    }

    #[test]
    fn l2_load_pays_latency() {
        let p = Program::new(vec![vec![load(L2_BASE)]]);
        let s = simulate(&cfg(), &p).expect("simulate");
        assert_eq!(s.cores[0].l2_ops, 1);
        // 1 retire + 14 wait + 1 park.
        assert_eq!(s.cycles, 1 + 14 + 1);
        assert_eq!(s.cores[0].idle_cycles, 14);
    }

    #[test]
    fn out_of_range_address_errors() {
        let p = Program::new(vec![vec![load(0xDEAD_0000)]]);
        assert!(matches!(
            simulate(&cfg(), &p),
            Err(SimError::AddressOutOfRange { core: 0, .. })
        ));
    }

    #[test]
    fn bank_conflicts_serialise_accesses() {
        // Two cores hammer the same bank with stores.
        let body = vec![store(TCDM_BASE)];
        let p = Program::new(vec![body.clone(), body]);
        let s = simulate(&cfg(), &p).expect("simulate");
        assert_eq!(s.l1_writes(), 2);
        assert_eq!(s.l1_conflicts(), 1);
        // One core lost one arbitration round.
        let idle: u64 = s.cores.iter().map(|c| c.idle_cycles).sum();
        assert_eq!(idle, 1);
    }

    #[test]
    fn no_conflicts_on_disjoint_banks() {
        let p = Program::new(vec![vec![store(TCDM_BASE)], vec![store(TCDM_BASE + 4)]]);
        let s = simulate(&cfg(), &p).expect("simulate");
        assert_eq!(s.l1_conflicts(), 0);
    }

    #[test]
    fn conflict_model_ablation_removes_conflicts() {
        let body = vec![store(TCDM_BASE)];
        let p = Program::new(vec![body.clone(), body]);
        let s = simulate(&cfg().without_bank_conflicts(), &p).expect("simulate");
        assert_eq!(s.l1_conflicts(), 0);
    }

    #[test]
    fn fpu_contention_stalls_partner_core() {
        // Cores 0 and 4 share FPU 0.
        let body = vec![instr(OpKind::Fp(crate::isa::FpOp::Mul))];
        let p = Program::new(vec![body.clone(), vec![], vec![], vec![], body]);
        let s = simulate(&cfg(), &p).expect("simulate");
        assert_eq!(s.cores[0].fp_ops + s.cores[4].fp_ops, 2);
        let stalls = s.cores[0].idle_cycles + s.cores[4].idle_cycles;
        assert_eq!(stalls, 1, "one of the pair must lose arbitration once");
    }

    #[test]
    fn fpu_ablation_removes_stalls() {
        let body = vec![instr(OpKind::Fp(crate::isa::FpOp::Mul))];
        let p = Program::new(vec![body.clone(), vec![], vec![], vec![], body]);
        let s = simulate(&cfg().without_fpu_contention(), &p).expect("simulate");
        let stalls = s.cores[0].idle_cycles + s.cores[4].idle_cycles;
        assert_eq!(stalls, 0);
    }

    #[test]
    fn barrier_synchronises_team() {
        // Core 0 does 10 ALU ops before the barrier, core 1 none.
        let p = Program::new(vec![
            std::iter::repeat_with(|| instr(OpKind::Alu))
                .take(10)
                .chain([SegOp::Barrier])
                .collect(),
            vec![SegOp::Barrier],
        ]);
        let s = simulate(&cfg(), &p).expect("simulate");
        assert_eq!(s.barriers, 1);
        // Core 1 slept while core 0 computed.
        assert!(
            s.cores[1].cg_cycles >= 9,
            "core 1 cg: {}",
            s.cores[1].cg_cycles
        );
        assert!(s.check_consistency().is_ok());
    }

    #[test]
    fn fork_wakes_workers() {
        let p = Program::new(vec![
            vec![
                instr(OpKind::Alu),
                SegOp::Fork,
                instr(OpKind::Alu),
                SegOp::Barrier,
            ],
            vec![SegOp::WaitFork, instr(OpKind::Alu), SegOp::Barrier],
        ]);
        let s = simulate(&cfg(), &p).expect("simulate");
        assert_eq!(s.cores[1].alu_ops, 1);
        // Worker slept during master's pre-fork work and fork latency.
        assert!(s.cores[1].cg_cycles >= u64::from(cfg().fork_latency) - 1);
        assert!(s.check_consistency().is_ok());
    }

    #[test]
    fn critical_section_serialises() {
        let body = vec![
            SegOp::CriticalBegin,
            instr(OpKind::Alu),
            instr(OpKind::Alu),
            SegOp::CriticalEnd,
        ];
        let p = Program::new(vec![body.clone(), body]);
        let s = simulate(&cfg(), &p).expect("simulate");
        // The second core spins while the first holds the lock.
        let spin: u64 = s.cores.iter().map(|c| c.idle_cycles).sum();
        assert!(spin >= 3, "expected lock spinning, got {spin} idle cycles");
        assert!(s.check_consistency().is_ok());
    }

    #[test]
    fn team_too_large_is_rejected() {
        let p = Program::new(vec![vec![]; 9]);
        assert!(matches!(
            simulate(&cfg(), &p),
            Err(SimError::TeamTooLarge {
                requested: 9,
                available: 8
            })
        ));
    }

    #[test]
    fn cycle_limit_detects_runaway() {
        let p = Program::new(vec![vec![
            SegOp::LoopBegin { trip: 1_000_000 },
            instr(OpKind::Alu),
            SegOp::LoopEnd,
        ]]);
        assert!(matches!(
            simulate_traced(&cfg(), &p, 100, &mut NullSink),
            Err(SimError::CycleLimit { budget: 100 })
        ));
    }

    #[test]
    fn clock_gating_ablation_turns_sleep_into_active_wait() {
        let p = Program::new(vec![
            std::iter::repeat_with(|| instr(OpKind::Alu))
                .take(10)
                .chain([SegOp::Barrier])
                .collect(),
            vec![SegOp::Barrier],
        ]);
        let s = simulate(&cfg().without_clock_gating(), &p).expect("simulate");
        assert_eq!(s.cores[1].cg_cycles, 0);
        assert!(s.cores[1].idle_cycles >= 9);
    }

    #[test]
    fn parallel_speedup_on_independent_work() {
        // 256 ALU ops split over 1 vs 4 cores.
        let chunk = |n: usize| -> Vec<SegOp> {
            vec![
                SegOp::LoopBegin { trip: n as u64 },
                instr(OpKind::Alu),
                SegOp::LoopEnd,
            ]
        };
        let p1 = Program::new(vec![chunk(256)]);
        let p4 = Program::new(vec![chunk(64), chunk(64), chunk(64), chunk(64)]);
        let s1 = simulate(&cfg(), &p1).expect("simulate");
        let s4 = simulate(&cfg(), &p4).expect("simulate");
        assert!(
            s4.cycles * 3 < s1.cycles,
            "expected near-4x speedup: {} vs {}",
            s1.cycles,
            s4.cycles
        );
    }

    #[test]
    fn trace_and_stats_agree_on_op_counts() {
        use crate::trace::VecSink;
        let p = Program::new(vec![vec![
            instr(OpKind::Alu),
            load(TCDM_BASE),
            store(TCDM_BASE + 64),
            SegOp::Barrier,
        ]]);
        let mut sink = VecSink::new();
        let s = simulate_traced(&cfg(), &p, 1_000, &mut sink).expect("simulate");
        let insns = sink
            .events
            .iter()
            .filter(|(_, e)| matches!(e, TraceEvent::Insn { .. }))
            .count() as u64;
        assert_eq!(insns, s.total_retired());
    }

    /// A program with a long quiescent span: core 0 programs a large
    /// blocking DMA transfer (busy for thousands of cycles) while core 1
    /// sleeps at the barrier.
    fn dma_barrier_program() -> Program {
        Program::new(vec![
            vec![
                SegOp::Dma {
                    words: 4096,
                    inbound: true,
                },
                SegOp::Barrier,
            ],
            vec![SegOp::Barrier],
        ])
    }

    fn run_opts(p: &Program, opts: &SimOptions) -> SimStats {
        simulate_opts(
            &cfg(),
            p,
            opts,
            &mut NullSink,
            &mut NoTelemetry,
            &mut SimScratch::new(),
        )
        .expect("simulate")
    }

    #[test]
    fn fast_forward_skips_quiescent_spans() {
        let s = run_opts(&dma_barrier_program(), &SimOptions::default());
        assert!(s.fast_forward.spans > 0, "no bulk spans taken: {s:?}");
        assert!(
            s.skip_ratio() > 0.5,
            "expected most cycles skipped, got {} of {}",
            s.fast_forward.skipped_cycles,
            s.cycles
        );
    }

    #[test]
    fn horizon_accounting_counts_scans_and_skips() {
        let p = dma_barrier_program();
        let s = run_opts(&p, &SimOptions::default());
        // One scan per non-bulk iteration plus one per bulk span.
        assert!(s.fast_forward.horizon_computations > 0);
        assert_eq!(s.fast_forward.horizon_skips, s.fast_forward.spans);
        assert!(s.fast_forward.horizon_skips <= s.fast_forward.horizon_computations);
        // Timing was off: the wall-time split stays untouched.
        assert_eq!(s.fast_forward.horizon_scan_nanos, 0);
        assert_eq!(s.fast_forward.step_nanos, 0);
        assert_eq!(s.fast_forward.horizon_scan_share(), 0.0);
        // The oracle runs no scans at all.
        let oracle = run_opts(&p, &SimOptions::oracle());
        assert_eq!(oracle.fast_forward.horizon_computations, 0);
    }

    #[test]
    fn horizon_timing_fills_the_wall_split_without_changing_results() {
        let p = dma_barrier_program();
        let timed = run_opts(&p, &SimOptions::default().with_horizon_timing(true));
        let untimed = run_opts(&p, &SimOptions::default());
        assert!(
            timed.fast_forward.horizon_scan_nanos > 0,
            "timed run must measure the scan: {:?}",
            timed.fast_forward
        );
        // Architectural results and the discrete horizon counters are
        // identical; only the nano fields differ.
        assert_eq!(timed.without_fast_forward(), untimed.without_fast_forward());
        assert_eq!(
            timed.fast_forward.horizon_computations,
            untimed.fast_forward.horizon_computations
        );
        assert_eq!(timed.fast_forward.spans, untimed.fast_forward.spans);
    }

    #[test]
    fn oracle_mode_never_skips_and_matches() {
        let p = dma_barrier_program();
        let ff = run_opts(&p, &SimOptions::default());
        let oracle = run_opts(&p, &SimOptions::oracle());
        assert_eq!(
            oracle.fast_forward,
            crate::stats::FastForwardStats::default()
        );
        assert_eq!(ff.without_fast_forward(), oracle);
    }

    #[test]
    fn fast_forward_trace_is_identical_to_oracle() {
        use crate::trace::VecSink;
        // Exercise fork/join, loops, multi-cycle ops, barriers and DMA so
        // the bulk replay covers every emitting mode.
        let worker = |n: u64| {
            vec![
                SegOp::WaitFork,
                SegOp::LoopBegin { trip: n },
                instr(OpKind::Mul),
                SegOp::LoopEnd,
                SegOp::Barrier,
            ]
        };
        let p = Program::new(vec![
            vec![
                SegOp::Fork,
                SegOp::Dma {
                    words: 512,
                    inbound: true,
                },
                instr(OpKind::Div),
                SegOp::Barrier,
            ],
            worker(7),
            worker(3),
            worker(11),
        ]);
        let run = |opts: &SimOptions| {
            let mut sink = VecSink::new();
            let stats = simulate_opts(
                &cfg(),
                &p,
                opts,
                &mut sink,
                &mut NoTelemetry,
                &mut SimScratch::new(),
            )
            .expect("simulate");
            (stats, sink.events)
        };
        let (ff, ff_events) = run(&SimOptions::default());
        let (oracle, oracle_events) = run(&SimOptions::oracle());
        assert!(ff.fast_forward.spans > 0, "program produced no spans");
        assert_eq!(ff.without_fast_forward(), oracle);
        assert_eq!(ff_events, oracle_events);
    }

    #[test]
    fn fast_forward_counters_ignore_the_sink() {
        use crate::trace::VecSink;
        // The horizon depends only on simulation state, so a traced run
        // must fast-forward exactly like an untraced one.
        let p = dma_barrier_program();
        let untraced = run_opts(&p, &SimOptions::default());
        let mut sink = VecSink::new();
        let traced = simulate_opts(
            &cfg(),
            &p,
            &SimOptions::default(),
            &mut sink,
            &mut NoTelemetry,
            &mut SimScratch::new(),
        )
        .expect("simulate");
        assert_eq!(traced, untraced);
    }

    #[test]
    fn scratch_reuse_across_team_sizes_is_clean() {
        let mut scratch = SimScratch::new();
        let chunk = |n: u64| {
            vec![
                SegOp::LoopBegin { trip: n },
                instr(OpKind::Alu),
                SegOp::LoopEnd,
                SegOp::Barrier,
            ]
        };
        for team in [8usize, 1, 4, 2] {
            let p = Program::new((0..team).map(|_| chunk(16)).collect());
            let reused = simulate_opts(
                &cfg(),
                &p,
                &SimOptions::default(),
                &mut NullSink,
                &mut NoTelemetry,
                &mut scratch,
            )
            .expect("simulate");
            let fresh = simulate(&cfg(), &p).expect("simulate");
            assert_eq!(reused, fresh, "team {team}: scratch reuse leaked state");
        }
    }

    /// Drives `bulk_advance` directly with a crafted state. Returns the
    /// (mode, left) of core 0 afterwards.
    fn bulk_advance_busy_core(left0: u32, n: u64) -> (Mode, u32) {
        let config = cfg();
        let mut stats = SimStats::new(config.num_cores, config.tcdm_banks, config.l2_banks);
        let mut modes = vec![Mode::Busy];
        let mut left = vec![left0];
        let mut cause = vec![CycleCause::Dma];
        let mut cg_open = vec![false; config.num_cores];
        let mut eu = EventUnit::new(1);
        bulk_advance(
            &config,
            &mut stats,
            &mut modes,
            &mut left,
            &mut cause,
            &mut cg_open,
            &mut eu,
            &mut NullSink,
            &mut NoTelemetry,
            0,
            n,
        );
        (modes[0], left[0])
    }

    #[test]
    fn bulk_advance_exact_boundary_releases_the_countdown() {
        // A span may consume a Busy countdown exactly; the core re-arms.
        assert_eq!(bulk_advance_busy_core(5, 5), (Mode::Ready, 0));
        assert_eq!(bulk_advance_busy_core(5, 4), (Mode::Busy, 1));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "overshoots")]
    fn bulk_advance_overshoot_panics_in_debug() {
        // Regression: this used to underflow-panic deep in the subtraction
        // under overflow-checks (and silently wrap in release). Now the
        // invariant is named by a debug_assert and the release arithmetic
        // saturates.
        bulk_advance_busy_core(5, 10);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn bulk_advance_overshoot_saturates_in_release() {
        assert_eq!(bulk_advance_busy_core(5, 10), (Mode::Ready, 0));
    }

    #[test]
    fn bulk_countdowns_hit_exact_boundaries_and_match_oracle() {
        // Countdowns engineered to expire at the span boundary: the horizon
        // equals core 1's Div tail while core 0 drains a blocking DMA, so
        // the bulk advance lands exactly on a `left == n` edge. Both modes
        // must agree bit-for-bit (the overshoot bug's oracle-side net).
        let p = Program::new(vec![
            vec![
                SegOp::Dma {
                    words: 4096,
                    inbound: true,
                },
                SegOp::Barrier,
            ],
            vec![
                instr(OpKind::Div),
                instr(OpKind::Div),
                instr(OpKind::Mul),
                SegOp::Barrier,
            ],
        ]);
        let ff = run_opts(&p, &SimOptions::default());
        let oracle = run_opts(&p, &SimOptions::oracle());
        assert!(ff.fast_forward.spans > 0, "program produced no spans");
        assert_eq!(ff.without_fast_forward(), oracle);
    }

    #[test]
    fn adaptive_scan_matches_always_scan_exactly() {
        // The adaptive re-arm rule must select a superset of the scans that
        // skip, so spans, skipped cycles and every architectural result are
        // bit-identical to scanning on every iteration.
        let worker = |n: u64| {
            vec![
                SegOp::WaitFork,
                SegOp::LoopBegin { trip: n },
                instr(OpKind::Mul),
                SegOp::LoopEnd,
                SegOp::Barrier,
            ]
        };
        let programs = [
            dma_barrier_program(),
            Program::new(vec![
                vec![
                    SegOp::Fork,
                    SegOp::DmaAsync {
                        words: 512,
                        inbound: true,
                    },
                    SegOp::DmaWait,
                    instr(OpKind::Div),
                    SegOp::Barrier,
                ],
                worker(7),
                worker(3),
            ]),
        ];
        for p in &programs {
            let adaptive = run_opts(p, &SimOptions::default());
            let always = run_opts(p, &SimOptions::default().with_adaptive_scan(false));
            assert_eq!(adaptive.fast_forward.spans, always.fast_forward.spans);
            assert_eq!(
                adaptive.fast_forward.skipped_cycles,
                always.fast_forward.skipped_cycles
            );
            assert_eq!(
                adaptive.fast_forward.horizon_skips,
                always.fast_forward.horizon_skips
            );
            assert!(
                adaptive.fast_forward.horizon_computations
                    <= always.fast_forward.horizon_computations
            );
            assert_eq!(
                adaptive.without_fast_forward(),
                always.without_fast_forward()
            );
        }
    }

    #[test]
    fn adaptive_scan_pays_no_overhead_on_alu_programs() {
        // A straight compute loop never opens a quiescent span; the
        // adaptive gate should collapse the scan count to the initial
        // arm while the always-scan reference pays one per cycle.
        let p = Program::new(vec![vec![
            SegOp::LoopBegin { trip: 256 },
            instr(OpKind::Alu),
            SegOp::LoopEnd,
        ]]);
        let adaptive = run_opts(&p, &SimOptions::default());
        let always = run_opts(&p, &SimOptions::default().with_adaptive_scan(false));
        assert_eq!(
            adaptive.without_fast_forward(),
            always.without_fast_forward()
        );
        assert_eq!(adaptive.fast_forward.spans, always.fast_forward.spans);
        assert!(
            adaptive.fast_forward.horizon_computations <= 2,
            "ALU program should scan at most on entry and park, got {}",
            adaptive.fast_forward.horizon_computations
        );
        assert!(always.fast_forward.horizon_computations >= adaptive.cycles / 2);
    }

    #[test]
    fn cycle_limit_is_identical_with_fast_forward() {
        // A run that outlives its budget mid-span must exhaust it
        // identically in both modes: the fast-forward never jumps past the
        // limit check.
        let p = dma_barrier_program();
        let opts = SimOptions::default().with_max_cycles(1_000);
        let ff = simulate_opts(
            &cfg(),
            &p,
            &opts,
            &mut NullSink,
            &mut NoTelemetry,
            &mut SimScratch::new(),
        );
        let oracle = simulate_opts(
            &cfg(),
            &p,
            &SimOptions {
                fast_forward: false,
                ..opts
            },
            &mut NullSink,
            &mut NoTelemetry,
            &mut SimScratch::new(),
        );
        assert!(matches!(ff, Err(SimError::CycleLimit { budget: 1_000 })));
        assert_eq!(ff, oracle);
    }
}

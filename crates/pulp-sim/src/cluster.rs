//! Cycle-level cluster simulation.
//!
//! [`simulate`] runs a [`Program`] on the configured cluster and returns
//! [`SimStats`]. Every mechanism the paper identifies as relevant for the
//! energy/parallelism trade-off is modelled per cycle: TCDM bank conflicts,
//! shared-FPU arbitration, L2 latency, barrier sleep with clock gating,
//! OpenMP fork/join overhead and critical-section serialisation.

use crate::cause::CycleCause;
use crate::config::ClusterConfig;
use crate::dma::{DmaEngine, DmaTransfer};
use crate::event_unit::EventUnit;
use crate::fpu::FpuPool;
use crate::icache::refills_for_static_insns;
use crate::isa::{MicroOp, OpKind};
use crate::program::{Program, SegOp, Step, ValidateProgramError};
use crate::stats::SimStats;
use crate::tcdm::TcdmArbiter;
use crate::telemetry::{NoTelemetry, Telemetry};
use crate::trace::{NullSink, TraceEvent, TraceSink};
use std::fmt;

/// Default cycle budget before a run is declared hung.
pub const DEFAULT_MAX_CYCLES: u64 = 2_000_000_000;

/// Errors produced by [`simulate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The program failed structural validation.
    Validate(ValidateProgramError),
    /// The program requests more cores than the cluster has.
    TeamTooLarge {
        /// Cores requested by the program.
        requested: usize,
        /// Cores available in the cluster.
        available: usize,
    },
    /// A memory operation addressed neither TCDM nor L2.
    AddressOutOfRange {
        /// Issuing core.
        core: usize,
        /// Faulting byte address.
        addr: u32,
    },
    /// The run exceeded the cycle budget (likely deadlock).
    CycleLimit {
        /// The exhausted budget.
        budget: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Validate(e) => write!(f, "invalid program: {e}"),
            Self::TeamTooLarge {
                requested,
                available,
            } => {
                write!(
                    f,
                    "program needs {requested} cores but cluster has {available}"
                )
            }
            Self::AddressOutOfRange { core, addr } => {
                write!(f, "core {core}: address {addr:#010x} maps to no memory")
            }
            Self::CycleLimit { budget } => {
                write!(f, "cycle budget of {budget} exhausted (deadlock?)")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Validate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidateProgramError> for SimError {
    fn from(e: ValidateProgramError) -> Self {
        Self::Validate(e)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Ready,
    /// Finishing a multi-cycle operation; carries the cause its remaining
    /// cycles are attributed to.
    Busy(u32, CycleCause),
    /// Master executing the fork runtime code.
    Forking(u32),
    SleepBarrier,
    SleepFork,
    Finished,
}

/// Tuning knobs for a simulation run (see [`simulate_opts`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Cycle budget before the run is declared hung.
    pub max_cycles: u64,
    /// Enables the event-horizon fast-forward: when no core is `Ready`, the
    /// clock jumps to the next cycle at which any state transition is
    /// possible, attributing the skipped cycles in bulk. Every
    /// architectural result — [`SimStats`] counters, trace-event stream,
    /// downstream energy labels — is bit-identical either way; only the
    /// [`crate::stats::FastForwardStats`] diagnostics differ. Disable to
    /// run the single-step oracle (the differential tests do).
    pub fast_forward: bool,
    /// Measures the wall-time split between the horizon scan and stepped
    /// execution (`horizon_scan_nanos`/`step_nanos` in
    /// [`crate::stats::FastForwardStats`]). Off by default: it adds two
    /// clock reads per loop iteration, which perturbs throughput runs, so
    /// benchmarks take a separate instrumented run for the split.
    pub horizon_timing: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            max_cycles: DEFAULT_MAX_CYCLES,
            fast_forward: true,
            horizon_timing: false,
        }
    }
}

impl SimOptions {
    /// The single-step oracle configuration: fast-forward disabled,
    /// default cycle budget.
    pub fn oracle() -> Self {
        Self {
            fast_forward: false,
            ..Self::default()
        }
    }

    /// Replaces the cycle budget.
    #[must_use]
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// Enables the horizon-overhead wall-time split.
    #[must_use]
    pub fn with_horizon_timing(mut self, horizon_timing: bool) -> Self {
        self.horizon_timing = horizon_timing;
        self
    }
}

/// Reusable per-run working memory for [`simulate_opts`].
///
/// A labelling sweep runs the same kernel at up to 8 team sizes back to
/// back; handing the same scratch to each run reuses the per-core state
/// vectors (core modes, fork sequence numbers, clock-gating flags) instead
/// of reallocating them. A scratch carries no state between runs — it is
/// fully reinitialised on entry — so reuse is purely an allocation saving.
#[derive(Debug, Default)]
pub struct SimScratch {
    modes: Vec<Mode>,
    forks_seen: Vec<u64>,
    cg_open: Vec<bool>,
}

impl SimScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn prepare(&mut self, team: usize, num_cores: usize) {
        self.modes.clear();
        self.modes.resize(team, Mode::Ready);
        self.forks_seen.clear();
        self.forks_seen.resize(team, 0);
        self.cg_open.clear();
        self.cg_open.resize(num_cores, false);
    }
}

/// Runs `program` on the cluster described by `config`, collecting stats.
///
/// Convenience wrapper over [`simulate_traced`] using a [`NullSink`] and the
/// default cycle budget.
///
/// # Errors
///
/// See [`simulate_traced`].
pub fn simulate(config: &ClusterConfig, program: &Program) -> Result<SimStats, SimError> {
    simulate_traced(config, program, DEFAULT_MAX_CYCLES, &mut NullSink)
}

/// Runs `program` on the cluster, streaming trace events into `sink`.
///
/// Convenience wrapper over [`simulate_instrumented`] with no telemetry.
///
/// # Errors
///
/// See [`simulate_instrumented`].
pub fn simulate_traced<S: TraceSink>(
    config: &ClusterConfig,
    program: &Program,
    max_cycles: u64,
    sink: &mut S,
) -> Result<SimStats, SimError> {
    simulate_instrumented(config, program, max_cycles, sink, &mut NoTelemetry)
}

/// Runs `program` on the cluster with trace and telemetry observers.
///
/// Cores `0..program.num_cores()` execute the program streams; remaining
/// cluster cores are clock-gated for the whole run (their leakage and
/// gating energy still counts, which is what makes small team sizes pay for
/// the silicon they do not use).
///
/// `telemetry` receives one [`Telemetry::on_cycle`] call per team/cluster
/// core per cycle with the cycle's exclusive [`CycleCause`], plus fork and
/// barrier-release region boundaries. Pass [`NoTelemetry`] (or use
/// [`simulate_traced`]) for the zero-cost path.
///
/// # Errors
///
/// Returns an error if the program is structurally invalid, requests more
/// cores than available, touches an unmapped address, or fails to finish
/// within `max_cycles`.
pub fn simulate_instrumented<S: TraceSink, T: Telemetry>(
    config: &ClusterConfig,
    program: &Program,
    max_cycles: u64,
    sink: &mut S,
    telemetry: &mut T,
) -> Result<SimStats, SimError> {
    simulate_opts(
        config,
        program,
        &SimOptions::default().with_max_cycles(max_cycles),
        sink,
        telemetry,
        &mut SimScratch::new(),
    )
}

/// Runs `program` on the cluster with explicit [`SimOptions`] and a caller-
/// provided [`SimScratch`].
///
/// This is the full-control entry point behind every other `simulate_*`
/// wrapper. `opts.fast_forward` selects between the event-horizon
/// fast-forward (default; bulk-advances over quiescent spans) and the
/// single-step oracle; both produce bit-identical architectural results.
/// `scratch` is reinitialised on entry and may be reused across runs to
/// avoid reallocating per-core state.
///
/// # Errors
///
/// See [`simulate_instrumented`].
pub fn simulate_opts<S: TraceSink, T: Telemetry>(
    config: &ClusterConfig,
    program: &Program,
    opts: &SimOptions,
    sink: &mut S,
    telemetry: &mut T,
    scratch: &mut SimScratch,
) -> Result<SimStats, SimError> {
    let max_cycles = opts.max_cycles;
    program.validate()?;
    let team = program.num_cores();
    if team > config.num_cores {
        return Err(SimError::TeamTooLarge {
            requested: team,
            available: config.num_cores,
        });
    }
    if team == 0 {
        let mut stats = SimStats::new(config.num_cores, config.tcdm_banks, config.l2_banks);
        stats.team_size = 0;
        telemetry.on_finish(0);
        return Ok(stats);
    }

    let mut stats = SimStats::new(config.num_cores, config.tcdm_banks, config.l2_banks);
    stats.team_size = team;

    let mut cursors: Vec<_> = (0..team)
        .map(|c| crate::program::Cursor::new(program, c))
        .collect();
    scratch.prepare(team, config.num_cores);
    let SimScratch {
        modes,
        forks_seen,
        cg_open,
    } = scratch;

    let mut eu = EventUnit::new(team);
    let mut dma = DmaEngine::new();
    let mut arbiter = TcdmArbiter::new(config.tcdm_banks, config.model_bank_conflicts);
    // The cluster reaches L2 through a single port: one new access may be
    // issued per cycle (accesses are pipelined, so latency still overlaps
    // across cores).
    let mut l2_port = TcdmArbiter::new(1, true);
    let mut fpus = FpuPool::new(
        config.num_fpus,
        config.model_fpu_contention,
        config.fpu_latency,
        config.fp_div_latency,
    );

    // Total master-side cycles per fork: base plus per-worker signalling.
    let fork_cycles =
        config.fork_latency + config.fork_per_worker * (team.saturating_sub(1)) as u32;

    let mut cycle: u64 = 0;
    loop {
        if modes.iter().all(|m| *m == Mode::Finished) {
            break;
        }
        if cycle >= max_cycles {
            return Err(SimError::CycleLimit { budget: max_cycles });
        }

        if opts.fast_forward {
            let scan_t0 = opts.horizon_timing.then(std::time::Instant::now);
            let h = event_horizon(
                &mut cursors,
                modes,
                forks_seen,
                &eu,
                &dma,
                cycle,
                max_cycles,
            );
            if let Some(t0) = scan_t0 {
                stats.fast_forward.horizon_scan_nanos += t0.elapsed().as_nanos() as u64;
            }
            stats.fast_forward.horizon_computations += 1;
            if h > 1 {
                stats.fast_forward.horizon_skips += 1;
                bulk_advance(
                    config, &mut stats, modes, cg_open, &mut eu, sink, telemetry, cycle, h,
                );
                cycle += h;
                continue;
            }
        }
        let step_t0 = opts.horizon_timing.then(std::time::Instant::now);

        let mut barrier_release = false;
        let mut any_active = false;

        for core in 0..team {
            match modes[core] {
                Mode::Finished => {
                    count_sleep(
                        config,
                        &mut stats,
                        cg_open,
                        sink,
                        telemetry,
                        cycle,
                        core,
                        CycleCause::Idle,
                    );
                }
                Mode::Busy(left, cause) => {
                    stall(&mut stats, sink, telemetry, cycle, core, cause);
                    any_active = true;
                    modes[core] = if left <= 1 {
                        Mode::Ready
                    } else {
                        Mode::Busy(left - 1, cause)
                    };
                }
                Mode::Forking(left) => {
                    stall(
                        &mut stats,
                        sink,
                        telemetry,
                        cycle,
                        core,
                        CycleCause::Runtime,
                    );
                    any_active = true;
                    if left <= 1 {
                        eu.signal_fork();
                        telemetry.on_fork(cycle);
                        sink.emit(cycle, TraceEvent::Fork);
                        cursors[core].advance();
                        modes[core] = Mode::Ready;
                    } else {
                        modes[core] = Mode::Forking(left - 1);
                    }
                }
                Mode::SleepBarrier => {
                    count_sleep(
                        config,
                        &mut stats,
                        cg_open,
                        sink,
                        telemetry,
                        cycle,
                        core,
                        CycleCause::Barrier,
                    );
                }
                Mode::SleepFork => {
                    if eu.fork_ready(forks_seen[core]) {
                        // Wake: this cycle is the dispatch cycle.
                        if cg_open[core] {
                            cg_open[core] = false;
                            sink.emit(cycle, TraceEvent::CgExit { core });
                        }
                        forks_seen[core] += 1;
                        cursors[core].advance();
                        stall(
                            &mut stats,
                            sink,
                            telemetry,
                            cycle,
                            core,
                            CycleCause::Runtime,
                        );
                        any_active = true;
                        modes[core] = Mode::Ready;
                    } else {
                        count_sleep(
                            config,
                            &mut stats,
                            cg_open,
                            sink,
                            telemetry,
                            cycle,
                            core,
                            CycleCause::ForkWait,
                        );
                    }
                }
                Mode::Ready => {
                    if cursors[core].is_done() {
                        modes[core] = Mode::Finished;
                        count_sleep(
                            config,
                            &mut stats,
                            cg_open,
                            sink,
                            telemetry,
                            cycle,
                            core,
                            CycleCause::Idle,
                        );
                        continue;
                    }
                    any_active = true;
                    step_core(
                        config,
                        fork_cycles,
                        &mut stats,
                        &mut cursors,
                        modes,
                        forks_seen,
                        cg_open,
                        &mut eu,
                        &mut dma,
                        &mut arbiter,
                        &mut l2_port,
                        &mut fpus,
                        &mut barrier_release,
                        sink,
                        telemetry,
                        cycle,
                        core,
                    )?;
                }
            }
        }

        // Unused physical cores are clock-gated for the whole run.
        for core in team..config.num_cores {
            count_sleep(
                config,
                &mut stats,
                cg_open,
                sink,
                telemetry,
                cycle,
                core,
                CycleCause::Idle,
            );
        }

        if barrier_release {
            eu.schedule_release(config.barrier_latency);
        }
        if eu.tick_release() {
            stats.barriers += 1;
            telemetry.on_barrier_release(cycle);
            sink.emit(cycle, TraceEvent::BarrierRelease);
            for core in 0..team {
                if modes[core] == Mode::SleepBarrier {
                    if cg_open[core] {
                        cg_open[core] = false;
                        sink.emit(cycle + 1, TraceEvent::CgExit { core });
                    }
                    cursors[core].advance();
                    modes[core] = Mode::Ready;
                }
            }
            eu.release_barrier();
        }

        if any_active || !config.model_clock_gating {
            stats.cluster_active_cycles += 1;
        }
        if let Some(t0) = step_t0 {
            stats.fast_forward.step_nanos += t0.elapsed().as_nanos() as u64;
        }
        cycle += 1;
    }

    // Close dangling clock-gating regions for the listeners.
    for (core, open) in cg_open.iter().enumerate().take(config.num_cores) {
        if *open {
            sink.emit(cycle, TraceEvent::CgExit { core });
        }
    }

    stats.cycles = cycle;
    stats.dma.words_transferred = dma.words_transferred();
    stats.dma.busy_cycles = dma.busy_cycles();
    stats.icache.fetches = stats.cores.iter().map(|c| c.fetches).sum();
    stats.icache.refills = (0..team)
        .map(|c| {
            let static_insns = program
                .stream(c)
                .iter()
                .filter(|s| matches!(s, SegOp::Instr { .. }))
                .count();
            refills_for_static_insns(static_insns as u64)
        })
        .sum();
    sink.emit(
        cycle,
        TraceEvent::IcacheRefill {
            count: stats.icache.refills,
        },
    );
    telemetry.on_finish(cycle);
    debug_assert_eq!(stats.check_consistency(), Ok(()));
    Ok(stats)
}

/// Accounts one active-wait cycle for `core`, attributed to `cause`.
fn stall<S: TraceSink, T: Telemetry>(
    stats: &mut SimStats,
    sink: &mut S,
    telemetry: &mut T,
    cycle: u64,
    core: usize,
    cause: CycleCause,
) {
    stats.cores[core].idle_cycles += 1;
    stats.cores[core].breakdown.add(cause);
    telemetry.on_cycle(cycle, core, cause);
    sink.emit(cycle, TraceEvent::Stall { core, cause });
}

/// Accounts one sleeping cycle for `core`, routed to clock gating or active
/// wait depending on the configuration's ablation switch. The cause tags
/// the whole gating region (emitted once, on `CgEnter`): a sleeping core's
/// reason cannot change until it wakes, which closes the region.
#[allow(clippy::too_many_arguments)]
fn count_sleep<S: TraceSink, T: Telemetry>(
    config: &ClusterConfig,
    stats: &mut SimStats,
    cg_open: &mut [bool],
    sink: &mut S,
    telemetry: &mut T,
    cycle: u64,
    core: usize,
    cause: CycleCause,
) {
    if config.model_clock_gating {
        if !cg_open[core] {
            cg_open[core] = true;
            sink.emit(cycle, TraceEvent::CgEnter { core, cause });
        }
        stats.cores[core].cg_cycles += 1;
        stats.cores[core].breakdown.add(cause);
        telemetry.on_cycle(cycle, core, cause);
    } else {
        stall(stats, sink, telemetry, cycle, core, cause);
    }
}

/// Number of cycles from `cycle` during which no core can change state: the
/// event-horizon the fast-forward may jump in one step.
///
/// A returned horizon `h` guarantees that for every cycle in
/// `[cycle, cycle + h)` the single-step loop would do nothing but count a
/// stall or sleep cycle per core — no retirement, no fork signal, no
/// barrier arrival or release, no DMA completion, no cursor movement. Any
/// cycle where something *can* happen is left to the single-step path, so
/// the horizon is 1 whenever:
///
/// - any core is `Ready` on real work (TCDM/FPU/L2 arbitration only
///   contends among ready cores, so a ready core pins the horizon), or
/// - a multi-cycle op, fork runtime, DMA wait or barrier-release countdown
///   expires on the very next cycle.
fn event_horizon(
    cursors: &mut [crate::program::Cursor<'_>],
    modes: &[Mode],
    forks_seen: &[u64],
    eu: &EventUnit,
    dma: &DmaEngine,
    cycle: u64,
    max_cycles: u64,
) -> u64 {
    // Never jump past the cycle budget: the limit check must still fire.
    let mut h = max_cycles - cycle;
    // The barrier-release firing cycle wakes sleepers; run it single-step.
    if let Some(k) = eu.release_in() {
        h = h.min(u64::from(k).max(1));
    }
    for (core, mode) in modes.iter().enumerate() {
        let quiet = match *mode {
            // A ready core issues this cycle — unless it is parked on a
            // blocking `DmaWait`, which provably spins until the engine
            // drains.
            Mode::Ready => match cursors[core].current() {
                Step::DmaWait => dma.free_at().saturating_sub(cycle),
                _ => 0,
            },
            Mode::Busy(left, _) => u64::from(left),
            // The final fork-runtime cycle signals the fork; keep it
            // single-step.
            Mode::Forking(left) => u64::from(left) - 1,
            Mode::SleepFork => {
                if eu.fork_ready(forks_seen[core]) {
                    0
                } else {
                    u64::MAX
                }
            }
            // Woken only by events already bounded above (barrier release),
            // or never.
            Mode::SleepBarrier | Mode::Finished => u64::MAX,
        };
        if quiet < h {
            h = quiet;
        }
        if h <= 1 {
            return 1;
        }
    }
    h
}

/// The per-cycle accounting class of `core` during a quiescent span: the
/// [`CycleCause`] its cycles are attributed to and whether it is sleeping
/// (eligible for clock gating) or actively waiting.
///
/// Mirrors exactly what the single-step loop does for each mode when no
/// state transition occurs; `Mode::Ready` inside a span is only ever a core
/// spinning on `DmaWait` (guaranteed by [`event_horizon`]).
fn bulk_class(modes: &[Mode], team: usize, core: usize) -> (CycleCause, bool) {
    if core >= team {
        return (CycleCause::Idle, true);
    }
    match modes[core] {
        Mode::Busy(_, cause) => (cause, false),
        Mode::Forking(_) => (CycleCause::Runtime, false),
        Mode::Ready => (CycleCause::Dma, false),
        Mode::SleepBarrier => (CycleCause::Barrier, true),
        Mode::SleepFork => (CycleCause::ForkWait, true),
        Mode::Finished => (CycleCause::Idle, true),
    }
}

/// Advances the simulation by `n` quiescent cycles in one step.
///
/// Replays the trace events the single-step loop would have emitted (in the
/// same cycle-major, core-minor order), bulk-updates the per-core stats and
/// telemetry, decrements the countdown modes and the pending barrier
/// release, and books the span in [`crate::stats::FastForwardStats`].
#[allow(clippy::too_many_arguments)]
fn bulk_advance<S: TraceSink, T: Telemetry>(
    config: &ClusterConfig,
    stats: &mut SimStats,
    modes: &mut [Mode],
    cg_open: &mut [bool],
    eu: &mut EventUnit,
    sink: &mut S,
    telemetry: &mut T,
    cycle: u64,
    n: u64,
) {
    let team = modes.len();

    // Trace replay must happen before any state mutation so `bulk_class`
    // and `cg_open` still describe the span's first cycle.
    if !sink.is_null() {
        let mut emitters = 0usize;
        let mut pending_cg = 0usize;
        for (core, open) in cg_open.iter().enumerate().take(config.num_cores) {
            let (_, sleeping) = bulk_class(modes, team, core);
            if sleeping && config.model_clock_gating {
                if !open {
                    pending_cg += 1;
                }
            } else {
                emitters += 1;
            }
        }
        if emitters == 1 && pending_cg == 0 {
            // Single stalling core, everyone else already gated: the span's
            // whole event stream is one repeated `Stall`.
            for core in 0..config.num_cores {
                let (cause, sleeping) = bulk_class(modes, team, core);
                if !(sleeping && config.model_clock_gating) {
                    sink.emit_n(cycle, n, TraceEvent::Stall { core, cause });
                }
            }
        } else {
            // Gated sleepers emit only their `CgEnter` on the first span
            // cycle; if nobody emits per cycle, one pass suffices.
            let cycles = if emitters > 0 { n } else { 1 };
            for i in 0..cycles {
                for (core, open) in cg_open.iter().enumerate().take(config.num_cores) {
                    let (cause, sleeping) = bulk_class(modes, team, core);
                    if sleeping && config.model_clock_gating {
                        if i == 0 && !open {
                            sink.emit(cycle, TraceEvent::CgEnter { core, cause });
                        }
                    } else {
                        sink.emit(cycle + i, TraceEvent::Stall { core, cause });
                    }
                }
            }
        }
    }

    let mut any_active = false;
    for core in 0..config.num_cores {
        let (cause, sleeping) = bulk_class(modes, team, core);
        if sleeping && config.model_clock_gating {
            cg_open[core] = true;
            stats.cores[core].cg_cycles += n;
        } else {
            stats.cores[core].idle_cycles += n;
        }
        if !sleeping {
            any_active = true;
        }
        stats.cores[core].breakdown.add_n(cause, n);
        telemetry.advance_n(cycle, core, n, cause);
        if core < team {
            match modes[core] {
                Mode::Busy(left, c) => {
                    modes[core] = if u64::from(left) == n {
                        Mode::Ready
                    } else {
                        Mode::Busy(left - n as u32, c)
                    };
                }
                Mode::Forking(left) => {
                    modes[core] = Mode::Forking(left - n as u32);
                }
                _ => {}
            }
        }
    }
    eu.skip_release_wait(n);
    if any_active || !config.model_clock_gating {
        stats.cluster_active_cycles += n;
    }
    stats.fast_forward.spans += 1;
    stats.fast_forward.skipped_cycles += n;
}

#[allow(clippy::too_many_arguments)]
fn step_core<S: TraceSink, T: Telemetry>(
    config: &ClusterConfig,
    fork_cycles: u32,
    stats: &mut SimStats,
    cursors: &mut [crate::program::Cursor<'_>],
    modes: &mut [Mode],
    forks_seen: &mut [u64],
    cg_open: &mut [bool],
    eu: &mut EventUnit,
    dma: &mut DmaEngine,
    arbiter: &mut TcdmArbiter,
    l2_port: &mut TcdmArbiter,
    fpus: &mut FpuPool,
    barrier_release: &mut bool,
    sink: &mut S,
    telemetry: &mut T,
    cycle: u64,
    core: usize,
) -> Result<(), SimError> {
    let step = cursors[core].current();
    match step {
        // Completion is detected by the main loop before dispatching here.
        Step::Done => unreachable!("step_core called on a finished cursor"),
        Step::Op(op) => {
            exec_op(
                config, stats, cursors, modes, arbiter, l2_port, fpus, sink, telemetry, cycle,
                core, op,
            )?;
        }
        Step::Barrier => {
            sink.emit(cycle, TraceEvent::BarrierArrive { core });
            stall(stats, sink, telemetry, cycle, core, CycleCause::Barrier);
            modes[core] = Mode::SleepBarrier;
            if eu.arrive(core) {
                *barrier_release = true;
            }
        }
        Step::Fork => {
            stall(stats, sink, telemetry, cycle, core, CycleCause::Runtime);
            if fork_cycles <= 1 {
                eu.signal_fork();
                telemetry.on_fork(cycle);
                sink.emit(cycle, TraceEvent::Fork);
                cursors[core].advance();
            } else {
                modes[core] = Mode::Forking(fork_cycles - 1);
            }
        }
        Step::WaitFork => {
            if eu.fork_ready(forks_seen[core]) {
                forks_seen[core] += 1;
                cursors[core].advance();
                stall(stats, sink, telemetry, cycle, core, CycleCause::Runtime);
            } else {
                modes[core] = Mode::SleepFork;
                // This cycle already counts as sleeping.
                if config.model_clock_gating {
                    cg_open[core] = true;
                    sink.emit(
                        cycle,
                        TraceEvent::CgEnter {
                            core,
                            cause: CycleCause::ForkWait,
                        },
                    );
                    stats.cores[core].cg_cycles += 1;
                    stats.cores[core].breakdown.add(CycleCause::ForkWait);
                    telemetry.on_cycle(cycle, core, CycleCause::ForkWait);
                    return Ok(());
                }
                stall(stats, sink, telemetry, cycle, core, CycleCause::ForkWait);
            }
        }
        Step::CriticalBegin => {
            if eu.try_lock(core) {
                retire(stats, sink, telemetry, cycle, core, OpKind::Alu, None);
                stats.cores[core].alu_ops += 1;
                cursors[core].advance();
            } else {
                stall(stats, sink, telemetry, cycle, core, CycleCause::Runtime);
            }
        }
        Step::CriticalEnd => {
            eu.unlock(core);
            retire(stats, sink, telemetry, cycle, core, OpKind::Alu, None);
            stats.cores[core].alu_ops += 1;
            cursors[core].advance();
        }
        Step::Dma { words, inbound } => {
            // Blocking transfer: the issuing core programs the engine and
            // actively waits for completion.
            let t = if inbound {
                DmaTransfer::inbound(words)
            } else {
                DmaTransfer::outbound(words)
            };
            let busy = dma.schedule(cycle, t) as u32;
            sink.emit(cycle, TraceEvent::Dma { words, inbound });
            stall(stats, sink, telemetry, cycle, core, CycleCause::Dma);
            cursors[core].advance();
            if busy > 1 {
                modes[core] = Mode::Busy(busy - 1, CycleCause::Dma);
            }
        }
        Step::DmaAsync { words, inbound } => {
            if dma.busy_at(cycle) {
                // Engine still streaming a previous transfer: retry.
                stall(stats, sink, telemetry, cycle, core, CycleCause::Dma);
            } else {
                let t = if inbound {
                    DmaTransfer::inbound(words)
                } else {
                    DmaTransfer::outbound(words)
                };
                dma.schedule(cycle, t);
                sink.emit(cycle, TraceEvent::Dma { words, inbound });
                // One cycle to program the engine; the core then continues.
                stall(stats, sink, telemetry, cycle, core, CycleCause::Dma);
                cursors[core].advance();
            }
        }
        Step::DmaWait => {
            stall(stats, sink, telemetry, cycle, core, CycleCause::Dma);
            if !dma.busy_at(cycle) {
                cursors[core].advance();
            }
        }
    }
    Ok(())
}

/// Records the fetch + trace event shared by every retirement path.
fn retire<S: TraceSink, T: Telemetry>(
    stats: &mut SimStats,
    sink: &mut S,
    telemetry: &mut T,
    cycle: u64,
    core: usize,
    kind: OpKind,
    addr: Option<u32>,
) {
    stats.cores[core].fetches += 1;
    stats.cores[core].breakdown.add(CycleCause::Execute);
    telemetry.on_cycle(cycle, core, CycleCause::Execute);
    sink.emit(cycle, TraceEvent::Insn { core, kind, addr });
}

#[allow(clippy::too_many_arguments)]
fn exec_op<S: TraceSink, T: Telemetry>(
    config: &ClusterConfig,
    stats: &mut SimStats,
    cursors: &mut [crate::program::Cursor<'_>],
    modes: &mut [Mode],
    arbiter: &mut TcdmArbiter,
    l2_port: &mut TcdmArbiter,
    fpus: &mut FpuPool,
    sink: &mut S,
    telemetry: &mut T,
    cycle: u64,
    core: usize,
    op: MicroOp,
) -> Result<(), SimError> {
    // An executing core is never clock-gated; CG flags are managed by the
    // sleep paths. `finish` consumes the step and schedules any multi-cycle
    // tail as Busy time attributed to `tail_cause`.
    let mut finish =
        |cursors: &mut [crate::program::Cursor<'_>], latency: u32, tail_cause: CycleCause| {
            cursors[core].advance();
            if latency > 1 {
                modes[core] = Mode::Busy(latency - 1, tail_cause);
            }
        };
    match op.kind {
        OpKind::Alu => {
            stats.cores[core].alu_ops += 1;
            retire(stats, sink, telemetry, cycle, core, op.kind, None);
            finish(cursors, 1, CycleCause::ExecTail);
        }
        OpKind::Mul => {
            stats.cores[core].alu_ops += 1;
            retire(stats, sink, telemetry, cycle, core, op.kind, None);
            finish(cursors, config.mul_latency, CycleCause::ExecTail);
        }
        OpKind::Div => {
            stats.cores[core].alu_ops += 1;
            retire(stats, sink, telemetry, cycle, core, op.kind, None);
            finish(cursors, config.int_div_latency, CycleCause::ExecTail);
        }
        OpKind::Branch | OpKind::Jump => {
            stats.cores[core].alu_ops += 1;
            retire(stats, sink, telemetry, cycle, core, op.kind, None);
            finish(
                cursors,
                1 + config.taken_branch_penalty,
                CycleCause::ExecTail,
            );
        }
        OpKind::Nop => {
            stats.cores[core].nop_ops += 1;
            retire(stats, sink, telemetry, cycle, core, op.kind, None);
            finish(cursors, 1, CycleCause::ExecTail);
        }
        OpKind::Fp(f) => {
            let fpu = config.fpu_of(core);
            match fpus.try_issue(fpu, f, cycle) {
                Some(issue) => {
                    stats.cores[core].fp_ops += 1;
                    retire(stats, sink, telemetry, cycle, core, op.kind, None);
                    finish(cursors, issue.core_busy, CycleCause::ExecTail);
                }
                None => {
                    stall(
                        stats,
                        sink,
                        telemetry,
                        cycle,
                        core,
                        CycleCause::FpuContention,
                    );
                }
            }
        }
        OpKind::Load | OpKind::Store => {
            let addr = op.addr.expect("memory op without address");
            let write = op.kind == OpKind::Store;
            if config.is_tcdm(addr) {
                let bank = config.tcdm_bank_of(addr);
                if arbiter.try_access(bank, cycle) {
                    stats.cores[core].l1_ops += 1;
                    if write {
                        stats.l1_banks[bank].writes += 1;
                    } else {
                        stats.l1_banks[bank].reads += 1;
                    }
                    sink.emit(cycle, TraceEvent::L1Access { bank, write });
                    retire(stats, sink, telemetry, cycle, core, op.kind, Some(addr));
                    finish(cursors, 1, CycleCause::ExecTail);
                } else {
                    stats.l1_banks[bank].conflicts += 1;
                    sink.emit(cycle, TraceEvent::L1Conflict { bank });
                    stall(
                        stats,
                        sink,
                        telemetry,
                        cycle,
                        core,
                        CycleCause::TcdmConflict,
                    );
                }
            } else if config.is_l2(addr) {
                if !l2_port.try_access(0, cycle) {
                    stall(stats, sink, telemetry, cycle, core, CycleCause::L2Wait);
                    return Ok(());
                }
                let bank = config.l2_bank_of(addr);
                stats.cores[core].l2_ops += 1;
                if write {
                    stats.l2_banks[bank].writes += 1;
                } else {
                    stats.l2_banks[bank].reads += 1;
                }
                sink.emit(cycle, TraceEvent::L2Access { bank, write });
                retire(stats, sink, telemetry, cycle, core, op.kind, Some(addr));
                finish(cursors, config.l2_latency, CycleCause::L2Wait);
            } else {
                return Err(SimError::AddressOutOfRange { core, addr });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{L2_BASE, TCDM_BASE};
    use crate::program::AddrExpr;

    fn instr(kind: OpKind) -> SegOp {
        SegOp::Instr { kind, addr: None }
    }

    fn load(addr: u32) -> SegOp {
        SegOp::Instr {
            kind: OpKind::Load,
            addr: Some(AddrExpr::constant(addr)),
        }
    }

    fn store(addr: u32) -> SegOp {
        SegOp::Instr {
            kind: OpKind::Store,
            addr: Some(AddrExpr::constant(addr)),
        }
    }

    fn cfg() -> ClusterConfig {
        ClusterConfig::default()
    }

    #[test]
    fn single_alu_program() {
        let p = Program::new(vec![vec![instr(OpKind::Alu)]]);
        let s = simulate(&cfg(), &p).expect("simulate");
        assert_eq!(s.cores[0].alu_ops, 1);
        assert_eq!(s.cycles, 2); // 1 execute + 1 finish/park cycle
        assert!(s.check_consistency().is_ok());
        // The 7 unused cores are clock-gated throughout.
        assert_eq!(s.cores[7].cg_cycles, s.cycles);
    }

    #[test]
    fn empty_team_is_a_noop() {
        let p = Program::new(vec![]);
        let s = simulate(&cfg(), &p).expect("simulate");
        assert_eq!(s.cycles, 0);
        assert_eq!(s.team_size, 0);
    }

    #[test]
    fn tcdm_load_is_single_cycle() {
        let p = Program::new(vec![vec![load(TCDM_BASE), load(TCDM_BASE + 4)]]);
        let s = simulate(&cfg(), &p).expect("simulate");
        assert_eq!(s.cores[0].l1_ops, 2);
        assert_eq!(s.l1_reads(), 2);
        assert_eq!(s.l1_conflicts(), 0);
        assert_eq!(s.cycles, 3);
    }

    #[test]
    fn l2_load_pays_latency() {
        let p = Program::new(vec![vec![load(L2_BASE)]]);
        let s = simulate(&cfg(), &p).expect("simulate");
        assert_eq!(s.cores[0].l2_ops, 1);
        // 1 retire + 14 wait + 1 park.
        assert_eq!(s.cycles, 1 + 14 + 1);
        assert_eq!(s.cores[0].idle_cycles, 14);
    }

    #[test]
    fn out_of_range_address_errors() {
        let p = Program::new(vec![vec![load(0xDEAD_0000)]]);
        assert!(matches!(
            simulate(&cfg(), &p),
            Err(SimError::AddressOutOfRange { core: 0, .. })
        ));
    }

    #[test]
    fn bank_conflicts_serialise_accesses() {
        // Two cores hammer the same bank with stores.
        let body = vec![store(TCDM_BASE)];
        let p = Program::new(vec![body.clone(), body]);
        let s = simulate(&cfg(), &p).expect("simulate");
        assert_eq!(s.l1_writes(), 2);
        assert_eq!(s.l1_conflicts(), 1);
        // One core lost one arbitration round.
        let idle: u64 = s.cores.iter().map(|c| c.idle_cycles).sum();
        assert_eq!(idle, 1);
    }

    #[test]
    fn no_conflicts_on_disjoint_banks() {
        let p = Program::new(vec![vec![store(TCDM_BASE)], vec![store(TCDM_BASE + 4)]]);
        let s = simulate(&cfg(), &p).expect("simulate");
        assert_eq!(s.l1_conflicts(), 0);
    }

    #[test]
    fn conflict_model_ablation_removes_conflicts() {
        let body = vec![store(TCDM_BASE)];
        let p = Program::new(vec![body.clone(), body]);
        let s = simulate(&cfg().without_bank_conflicts(), &p).expect("simulate");
        assert_eq!(s.l1_conflicts(), 0);
    }

    #[test]
    fn fpu_contention_stalls_partner_core() {
        // Cores 0 and 4 share FPU 0.
        let body = vec![instr(OpKind::Fp(crate::isa::FpOp::Mul))];
        let p = Program::new(vec![body.clone(), vec![], vec![], vec![], body]);
        let s = simulate(&cfg(), &p).expect("simulate");
        assert_eq!(s.cores[0].fp_ops + s.cores[4].fp_ops, 2);
        let stalls = s.cores[0].idle_cycles + s.cores[4].idle_cycles;
        assert_eq!(stalls, 1, "one of the pair must lose arbitration once");
    }

    #[test]
    fn fpu_ablation_removes_stalls() {
        let body = vec![instr(OpKind::Fp(crate::isa::FpOp::Mul))];
        let p = Program::new(vec![body.clone(), vec![], vec![], vec![], body]);
        let s = simulate(&cfg().without_fpu_contention(), &p).expect("simulate");
        let stalls = s.cores[0].idle_cycles + s.cores[4].idle_cycles;
        assert_eq!(stalls, 0);
    }

    #[test]
    fn barrier_synchronises_team() {
        // Core 0 does 10 ALU ops before the barrier, core 1 none.
        let p = Program::new(vec![
            std::iter::repeat_with(|| instr(OpKind::Alu))
                .take(10)
                .chain([SegOp::Barrier])
                .collect(),
            vec![SegOp::Barrier],
        ]);
        let s = simulate(&cfg(), &p).expect("simulate");
        assert_eq!(s.barriers, 1);
        // Core 1 slept while core 0 computed.
        assert!(
            s.cores[1].cg_cycles >= 9,
            "core 1 cg: {}",
            s.cores[1].cg_cycles
        );
        assert!(s.check_consistency().is_ok());
    }

    #[test]
    fn fork_wakes_workers() {
        let p = Program::new(vec![
            vec![
                instr(OpKind::Alu),
                SegOp::Fork,
                instr(OpKind::Alu),
                SegOp::Barrier,
            ],
            vec![SegOp::WaitFork, instr(OpKind::Alu), SegOp::Barrier],
        ]);
        let s = simulate(&cfg(), &p).expect("simulate");
        assert_eq!(s.cores[1].alu_ops, 1);
        // Worker slept during master's pre-fork work and fork latency.
        assert!(s.cores[1].cg_cycles >= u64::from(cfg().fork_latency) - 1);
        assert!(s.check_consistency().is_ok());
    }

    #[test]
    fn critical_section_serialises() {
        let body = vec![
            SegOp::CriticalBegin,
            instr(OpKind::Alu),
            instr(OpKind::Alu),
            SegOp::CriticalEnd,
        ];
        let p = Program::new(vec![body.clone(), body]);
        let s = simulate(&cfg(), &p).expect("simulate");
        // The second core spins while the first holds the lock.
        let spin: u64 = s.cores.iter().map(|c| c.idle_cycles).sum();
        assert!(spin >= 3, "expected lock spinning, got {spin} idle cycles");
        assert!(s.check_consistency().is_ok());
    }

    #[test]
    fn team_too_large_is_rejected() {
        let p = Program::new(vec![vec![]; 9]);
        assert!(matches!(
            simulate(&cfg(), &p),
            Err(SimError::TeamTooLarge {
                requested: 9,
                available: 8
            })
        ));
    }

    #[test]
    fn cycle_limit_detects_runaway() {
        let p = Program::new(vec![vec![
            SegOp::LoopBegin { trip: 1_000_000 },
            instr(OpKind::Alu),
            SegOp::LoopEnd,
        ]]);
        assert!(matches!(
            simulate_traced(&cfg(), &p, 100, &mut NullSink),
            Err(SimError::CycleLimit { budget: 100 })
        ));
    }

    #[test]
    fn clock_gating_ablation_turns_sleep_into_active_wait() {
        let p = Program::new(vec![
            std::iter::repeat_with(|| instr(OpKind::Alu))
                .take(10)
                .chain([SegOp::Barrier])
                .collect(),
            vec![SegOp::Barrier],
        ]);
        let s = simulate(&cfg().without_clock_gating(), &p).expect("simulate");
        assert_eq!(s.cores[1].cg_cycles, 0);
        assert!(s.cores[1].idle_cycles >= 9);
    }

    #[test]
    fn parallel_speedup_on_independent_work() {
        // 256 ALU ops split over 1 vs 4 cores.
        let chunk = |n: usize| -> Vec<SegOp> {
            vec![
                SegOp::LoopBegin { trip: n as u64 },
                instr(OpKind::Alu),
                SegOp::LoopEnd,
            ]
        };
        let p1 = Program::new(vec![chunk(256)]);
        let p4 = Program::new(vec![chunk(64), chunk(64), chunk(64), chunk(64)]);
        let s1 = simulate(&cfg(), &p1).expect("simulate");
        let s4 = simulate(&cfg(), &p4).expect("simulate");
        assert!(
            s4.cycles * 3 < s1.cycles,
            "expected near-4x speedup: {} vs {}",
            s1.cycles,
            s4.cycles
        );
    }

    #[test]
    fn trace_and_stats_agree_on_op_counts() {
        use crate::trace::VecSink;
        let p = Program::new(vec![vec![
            instr(OpKind::Alu),
            load(TCDM_BASE),
            store(TCDM_BASE + 64),
            SegOp::Barrier,
        ]]);
        let mut sink = VecSink::new();
        let s = simulate_traced(&cfg(), &p, 1_000, &mut sink).expect("simulate");
        let insns = sink
            .events
            .iter()
            .filter(|(_, e)| matches!(e, TraceEvent::Insn { .. }))
            .count() as u64;
        assert_eq!(insns, s.total_retired());
    }

    /// A program with a long quiescent span: core 0 programs a large
    /// blocking DMA transfer (busy for thousands of cycles) while core 1
    /// sleeps at the barrier.
    fn dma_barrier_program() -> Program {
        Program::new(vec![
            vec![
                SegOp::Dma {
                    words: 4096,
                    inbound: true,
                },
                SegOp::Barrier,
            ],
            vec![SegOp::Barrier],
        ])
    }

    fn run_opts(p: &Program, opts: &SimOptions) -> SimStats {
        simulate_opts(
            &cfg(),
            p,
            opts,
            &mut NullSink,
            &mut NoTelemetry,
            &mut SimScratch::new(),
        )
        .expect("simulate")
    }

    #[test]
    fn fast_forward_skips_quiescent_spans() {
        let s = run_opts(&dma_barrier_program(), &SimOptions::default());
        assert!(s.fast_forward.spans > 0, "no bulk spans taken: {s:?}");
        assert!(
            s.skip_ratio() > 0.5,
            "expected most cycles skipped, got {} of {}",
            s.fast_forward.skipped_cycles,
            s.cycles
        );
    }

    #[test]
    fn horizon_accounting_counts_scans_and_skips() {
        let p = dma_barrier_program();
        let s = run_opts(&p, &SimOptions::default());
        // One scan per non-bulk iteration plus one per bulk span.
        assert!(s.fast_forward.horizon_computations > 0);
        assert_eq!(s.fast_forward.horizon_skips, s.fast_forward.spans);
        assert!(s.fast_forward.horizon_skips <= s.fast_forward.horizon_computations);
        // Timing was off: the wall-time split stays untouched.
        assert_eq!(s.fast_forward.horizon_scan_nanos, 0);
        assert_eq!(s.fast_forward.step_nanos, 0);
        assert_eq!(s.fast_forward.horizon_scan_share(), 0.0);
        // The oracle runs no scans at all.
        let oracle = run_opts(&p, &SimOptions::oracle());
        assert_eq!(oracle.fast_forward.horizon_computations, 0);
    }

    #[test]
    fn horizon_timing_fills_the_wall_split_without_changing_results() {
        let p = dma_barrier_program();
        let timed = run_opts(&p, &SimOptions::default().with_horizon_timing(true));
        let untimed = run_opts(&p, &SimOptions::default());
        assert!(
            timed.fast_forward.horizon_scan_nanos > 0,
            "timed run must measure the scan: {:?}",
            timed.fast_forward
        );
        // Architectural results and the discrete horizon counters are
        // identical; only the nano fields differ.
        assert_eq!(timed.without_fast_forward(), untimed.without_fast_forward());
        assert_eq!(
            timed.fast_forward.horizon_computations,
            untimed.fast_forward.horizon_computations
        );
        assert_eq!(timed.fast_forward.spans, untimed.fast_forward.spans);
    }

    #[test]
    fn oracle_mode_never_skips_and_matches() {
        let p = dma_barrier_program();
        let ff = run_opts(&p, &SimOptions::default());
        let oracle = run_opts(&p, &SimOptions::oracle());
        assert_eq!(
            oracle.fast_forward,
            crate::stats::FastForwardStats::default()
        );
        assert_eq!(ff.without_fast_forward(), oracle);
    }

    #[test]
    fn fast_forward_trace_is_identical_to_oracle() {
        use crate::trace::VecSink;
        // Exercise fork/join, loops, multi-cycle ops, barriers and DMA so
        // the bulk replay covers every emitting mode.
        let worker = |n: u64| {
            vec![
                SegOp::WaitFork,
                SegOp::LoopBegin { trip: n },
                instr(OpKind::Mul),
                SegOp::LoopEnd,
                SegOp::Barrier,
            ]
        };
        let p = Program::new(vec![
            vec![
                SegOp::Fork,
                SegOp::Dma {
                    words: 512,
                    inbound: true,
                },
                instr(OpKind::Div),
                SegOp::Barrier,
            ],
            worker(7),
            worker(3),
            worker(11),
        ]);
        let run = |opts: &SimOptions| {
            let mut sink = VecSink::new();
            let stats = simulate_opts(
                &cfg(),
                &p,
                opts,
                &mut sink,
                &mut NoTelemetry,
                &mut SimScratch::new(),
            )
            .expect("simulate");
            (stats, sink.events)
        };
        let (ff, ff_events) = run(&SimOptions::default());
        let (oracle, oracle_events) = run(&SimOptions::oracle());
        assert!(ff.fast_forward.spans > 0, "program produced no spans");
        assert_eq!(ff.without_fast_forward(), oracle);
        assert_eq!(ff_events, oracle_events);
    }

    #[test]
    fn fast_forward_counters_ignore_the_sink() {
        use crate::trace::VecSink;
        // The horizon depends only on simulation state, so a traced run
        // must fast-forward exactly like an untraced one.
        let p = dma_barrier_program();
        let untraced = run_opts(&p, &SimOptions::default());
        let mut sink = VecSink::new();
        let traced = simulate_opts(
            &cfg(),
            &p,
            &SimOptions::default(),
            &mut sink,
            &mut NoTelemetry,
            &mut SimScratch::new(),
        )
        .expect("simulate");
        assert_eq!(traced, untraced);
    }

    #[test]
    fn scratch_reuse_across_team_sizes_is_clean() {
        let mut scratch = SimScratch::new();
        let chunk = |n: u64| {
            vec![
                SegOp::LoopBegin { trip: n },
                instr(OpKind::Alu),
                SegOp::LoopEnd,
                SegOp::Barrier,
            ]
        };
        for team in [8usize, 1, 4, 2] {
            let p = Program::new((0..team).map(|_| chunk(16)).collect());
            let reused = simulate_opts(
                &cfg(),
                &p,
                &SimOptions::default(),
                &mut NullSink,
                &mut NoTelemetry,
                &mut scratch,
            )
            .expect("simulate");
            let fresh = simulate(&cfg(), &p).expect("simulate");
            assert_eq!(reused, fresh, "team {team}: scratch reuse leaked state");
        }
    }

    #[test]
    fn cycle_limit_is_identical_with_fast_forward() {
        // A run that outlives its budget mid-span must exhaust it
        // identically in both modes: the fast-forward never jumps past the
        // limit check.
        let p = dma_barrier_program();
        let opts = SimOptions::default().with_max_cycles(1_000);
        let ff = simulate_opts(
            &cfg(),
            &p,
            &opts,
            &mut NullSink,
            &mut NoTelemetry,
            &mut SimScratch::new(),
        );
        let oracle = simulate_opts(
            &cfg(),
            &p,
            &SimOptions {
                fast_forward: false,
                ..opts
            },
            &mut NullSink,
            &mut NoTelemetry,
            &mut SimScratch::new(),
        );
        assert!(matches!(ff, Err(SimError::CycleLimit { budget: 1_000 })));
        assert_eq!(ff, oracle);
    }
}

//! Polybench kernels ported to the kernel IR.
//!
//! Polybench is "a well-known set of programs for testing polyhedral
//! optimisation passes in compilers" (§IV-B). The ports keep each kernel's
//! loop structure, access patterns and compute density; the outermost loop
//! of each kernel is the OpenMP-parallel one, as in common OpenMP ports.
//!
//! Two IR-level approximations apply across the suite (documented in
//! DESIGN.md): triangular loop nests use their average trip count (the IR
//! has rectangular loops only), and `sqrt` is modelled as a divide-class
//! operation.

use crate::params::{builder, KernelParams};
use kernel_ir::{Kernel, Suite, ValidateKernelError};

type BuildResult = Result<Kernel, ValidateKernelError>;

/// `C = α·A·B + β·C` — the canonical dense matrix multiply.
pub fn gemm(p: &KernelParams) -> BuildResult {
    let n = p.mat_side(3);
    let mut b = builder("gemm", Suite::Polybench, p);
    let a = b.array("A", n * n);
    let bb = b.array("B", n * n);
    let c = b.array("C", n * n);
    b.par_for(n as u64, |b, i| {
        b.for_(n as u64, |b, j| {
            b.load(c, i * n + j);
            b.compute_mul(1); // beta * C
            b.for_(n as u64, |b, k| {
                b.load(a, i * n + k);
                b.load(bb, k * n + j);
                b.compute(2); // alpha*A*B multiply-accumulate
            });
            b.store(c, i * n + j);
        });
    });
    b.build()
}

/// `D = A·B; E = C·D` — two chained matrix multiplies.
pub fn two_mm(p: &KernelParams) -> BuildResult {
    let n = p.mat_side(5);
    let mut b = builder("2mm", Suite::Polybench, p);
    let a = b.array("A", n * n);
    let bb = b.array("B", n * n);
    let c = b.array("C", n * n);
    let d = b.array("D", n * n);
    let e = b.array("E", n * n);
    for (x, y, out) in [(a, bb, d), (c, d, e)] {
        b.par_for(n as u64, |b, i| {
            b.for_(n as u64, |b, j| {
                b.for_(n as u64, |b, k| {
                    b.load(x, i * n + k);
                    b.load(y, k * n + j);
                    b.compute(2);
                });
                b.store(out, i * n + j);
            });
        });
    }
    b.build()
}

/// `F = (A·B)·(C·D)` — three chained matrix multiplies.
pub fn three_mm(p: &KernelParams) -> BuildResult {
    let n = p.mat_side(7);
    let mut b = builder("3mm", Suite::Polybench, p);
    let names = ["A", "B", "C", "D", "E", "F", "G"];
    let arrs: Vec<_> = names.iter().map(|s| b.array(*s, n * n)).collect();
    let (a, bb, c, d, e, f, g) = (
        arrs[0], arrs[1], arrs[2], arrs[3], arrs[4], arrs[5], arrs[6],
    );
    for (x, y, out) in [(a, bb, e), (c, d, f), (e, f, g)] {
        b.par_for(n as u64, |b, i| {
            b.for_(n as u64, |b, j| {
                b.for_(n as u64, |b, k| {
                    b.load(x, i * n + k);
                    b.load(y, k * n + j);
                    b.compute(2);
                });
                b.store(out, i * n + j);
            });
        });
    }
    b.build()
}

/// `y = Aᵀ·(A·x)` — matrix transpose–vector products.
pub fn atax(p: &KernelParams) -> BuildResult {
    let n = p.mat_side(1);
    let mut b = builder("atax", Suite::Polybench, p);
    let a = b.array("A", n * n);
    let x = b.array("x", n);
    let tmp = b.array("tmp", n);
    let y = b.array("y", n);
    b.par_for(n as u64, |b, i| {
        b.for_(n as u64, |b, j| {
            b.load(a, i * n + j);
            b.load(x, j);
            b.compute(2);
        });
        b.store(tmp, i);
    });
    b.par_for(n as u64, |b, j| {
        b.for_(n as u64, |b, i| {
            b.load(a, i * n + j);
            b.load(tmp, i);
            b.compute(2);
        });
        b.store(y, j);
    });
    b.build()
}

/// BiCG sub-kernel: `q = A·p; s = Aᵀ·r`.
pub fn bicg(p: &KernelParams) -> BuildResult {
    let n = p.mat_side(1);
    let mut b = builder("bicg", Suite::Polybench, p);
    let a = b.array("A", n * n);
    let pv = b.array("p", n);
    let r = b.array("r", n);
    let q = b.array("q", n);
    let s = b.array("s", n);
    b.par_for(n as u64, |b, i| {
        b.for_(n as u64, |b, j| {
            b.load(a, i * n + j);
            b.load(pv, j);
            b.compute(2);
        });
        b.store(q, i);
    });
    b.par_for(n as u64, |b, j| {
        b.for_(n as u64, |b, i| {
            b.load(a, i * n + j);
            b.load(r, i);
            b.compute(2);
        });
        b.store(s, j);
    });
    b.build()
}

/// `x1 += A·y1; x2 += Aᵀ·y2` — two matrix–vector products.
pub fn mvt(p: &KernelParams) -> BuildResult {
    let n = p.mat_side(1);
    let mut b = builder("mvt", Suite::Polybench, p);
    let a = b.array("A", n * n);
    let x1 = b.array("x1", n);
    let x2 = b.array("x2", n);
    let y1 = b.array("y1", n);
    let y2 = b.array("y2", n);
    b.par_for(n as u64, |b, i| {
        b.load(x1, i);
        b.for_(n as u64, |b, j| {
            b.load(a, i * n + j);
            b.load(y1, j);
            b.compute(2);
        });
        b.store(x1, i);
    });
    b.par_for(n as u64, |b, i| {
        b.load(x2, i);
        b.for_(n as u64, |b, j| {
            b.load(a, j * n + i);
            b.load(y2, j);
            b.compute(2);
        });
        b.store(x2, i);
    });
    b.build()
}

/// Vector multiplications and matrix additions (`gemver`).
pub fn gemver(p: &KernelParams) -> BuildResult {
    let n = p.mat_side(1);
    let mut b = builder("gemver", Suite::Polybench, p);
    let a = b.array("A", n * n);
    let u1 = b.array("u1", n);
    let v1 = b.array("v1", n);
    let u2 = b.array("u2", n);
    let v2 = b.array("v2", n);
    let x = b.array("x", n);
    let y = b.array("y", n);
    let w = b.array("w", n);
    let z = b.array("z", n);
    // A = A + u1 v1' + u2 v2'
    b.par_for(n as u64, |b, i| {
        b.load(u1, i);
        b.load(u2, i);
        b.for_(n as u64, |b, j| {
            b.load(a, i * n + j);
            b.load(v1, j);
            b.load(v2, j);
            b.compute(4);
            b.store(a, i * n + j);
        });
    });
    // x = beta * A' y + z
    b.par_for(n as u64, |b, i| {
        b.for_(n as u64, |b, j| {
            b.load(a, j * n + i);
            b.load(y, j);
            b.compute(2);
        });
        b.load(z, i);
        b.compute(1);
        b.store(x, i);
    });
    // w = alpha * A x
    b.par_for(n as u64, |b, i| {
        b.for_(n as u64, |b, j| {
            b.load(a, i * n + j);
            b.load(x, j);
            b.compute(2);
        });
        b.store(w, i);
    });
    b.build()
}

/// `y = α·A·x + β·B·x` — summed matrix–vector products.
pub fn gesummv(p: &KernelParams) -> BuildResult {
    let n = p.mat_side(2);
    let mut b = builder("gesummv", Suite::Polybench, p);
    let a = b.array("A", n * n);
    let bb = b.array("B", n * n);
    let x = b.array("x", n);
    let y = b.array("y", n);
    b.par_for(n as u64, |b, i| {
        b.for_(n as u64, |b, j| {
            b.load(a, i * n + j);
            b.load(bb, i * n + j);
            b.load(x, j);
            b.compute(4);
        });
        b.compute(2); // alpha*tmp + beta*y
        b.store(y, i);
    });
    b.build()
}

/// Symmetric rank-k update `C = α·A·Aᵀ + β·C` (triangular nest averaged).
pub fn syrk(p: &KernelParams) -> BuildResult {
    let n = p.mat_side(2);
    let half = (n / 2).max(1);
    let mut b = builder("syrk", Suite::Polybench, p);
    let a = b.array("A", n * n);
    let c = b.array("C", n * n);
    b.par_for(n as u64, |b, i| {
        // j <= i averaged to n/2 iterations.
        b.for_(half as u64, |b, j| {
            b.load(c, i * n + j);
            b.compute_mul(1);
            b.for_(n as u64, |b, k| {
                b.load(a, i * n + k);
                b.load(a, j * n + k);
                b.compute(2);
            });
            b.store(c, i * n + j);
        });
    });
    b.build()
}

/// Symmetric rank-2k update `C = α·A·Bᵀ + α·B·Aᵀ + β·C`.
pub fn syr2k(p: &KernelParams) -> BuildResult {
    let n = p.mat_side(3);
    let half = (n / 2).max(1);
    let mut b = builder("syr2k", Suite::Polybench, p);
    let a = b.array("A", n * n);
    let bb = b.array("B", n * n);
    let c = b.array("C", n * n);
    b.par_for(n as u64, |b, i| {
        b.for_(half as u64, |b, j| {
            b.load(c, i * n + j);
            b.compute_mul(1);
            b.for_(n as u64, |b, k| {
                b.load(a, i * n + k);
                b.load(bb, j * n + k);
                b.load(a, j * n + k);
                b.load(bb, i * n + k);
                b.compute(4);
            });
            b.store(c, i * n + j);
        });
    });
    b.build()
}

/// Triangular matrix multiply `B = α·Aᵀ·B` (triangular nest averaged).
pub fn trmm(p: &KernelParams) -> BuildResult {
    let n = p.mat_side(2);
    let half = (n / 2).max(1);
    let mut b = builder("trmm", Suite::Polybench, p);
    let a = b.array("A", n * n);
    let bb = b.array("B", n * n);
    b.par_for(n as u64, |b, i| {
        b.for_(n as u64, |b, j| {
            b.for_(half as u64, |b, k| {
                b.load(a, k * n + i);
                b.load(bb, k * n + j);
                b.compute(2);
            });
            b.load(bb, i * n + j);
            b.compute_mul(1);
            b.store(bb, i * n + j);
        });
    });
    b.build()
}

/// Symmetric matrix multiply `C = α·A·B + β·C` with symmetric `A`.
pub fn symm(p: &KernelParams) -> BuildResult {
    let n = p.mat_side(3);
    let half = (n / 2).max(1);
    let mut b = builder("symm", Suite::Polybench, p);
    let a = b.array("A", n * n);
    let bb = b.array("B", n * n);
    let c = b.array("C", n * n);
    b.par_for(n as u64, |b, i| {
        b.for_(n as u64, |b, j| {
            b.for_(half as u64, |b, k| {
                b.load(a, i * n + k);
                b.load(bb, k * n + j);
                b.load(c, k * n + j);
                b.compute(3);
            });
            b.load(bb, i * n + j);
            b.load(c, i * n + j);
            b.compute(3);
            b.store(c, i * n + j);
        });
    });
    b.build()
}

/// Multiresolution analysis kernel `doitgen` (3D tensor contraction).
pub fn doitgen(p: &KernelParams) -> BuildResult {
    // Tensor nr x nq x np plus projection matrix np x np; the tensor
    // takes the bulk of the payload.
    let nq = 4usize;
    let np = (((p.elems() / 2) / nq) as f64).sqrt().floor().max(4.0) as usize;
    let nr = np;
    let mut b = builder("doitgen", Suite::Polybench, p);
    let a = b.array("A", nr * nq * np);
    let c4 = b.array("C4", np * np);
    let sum = b.array("sum", np * 8); // one scratch row per core
    b.par_for(nr as u64, |b, r| {
        b.for_(nq as u64, |b, q| {
            b.for_(np as u64, |b, pp| {
                b.for_(np as u64, |b, s| {
                    b.load(a, (r * nq + kernel_ir::Idx::from(q)) * np + s);
                    b.load(c4, s * np + pp);
                    b.compute(2);
                });
                b.store(sum, pp);
            });
            b.for_(np as u64, |b, pp| {
                b.load(sum, pp);
                b.store(a, (r * nq + kernel_ir::Idx::from(q)) * np + pp);
            });
        });
    });
    b.build()
}

/// Cholesky decomposition (float-only: needs divides and square roots).
pub fn cholesky(p: &KernelParams) -> BuildResult {
    let n = p.mat_side(1);
    let half = (n / 2).max(1);
    let mut b = builder("cholesky", Suite::Polybench, p);
    let a = b.array("A", n * n);
    // Row factorisation: parallel over rows within a block column
    // (simplified right-looking structure).
    b.par_for(n as u64, |b, i| {
        b.for_(half as u64, |b, j| {
            b.load(a, i * n + j);
            b.for_(half as u64, |b, k| {
                b.load(a, i * n + k);
                b.load(a, j * n + k);
                b.compute(2);
            });
            b.compute_div(1); // divide by the pivot
            b.store(a, i * n + j);
        });
        b.load(a, i * n + i);
        b.compute_div(1); // sqrt modelled as divide-class
        b.store(a, i * n + i);
    });
    b.build()
}

/// LU decomposition (right-looking, triangular nests averaged).
pub fn lu(p: &KernelParams) -> BuildResult {
    let n = p.mat_side(1);
    let half = (n / 2).max(1);
    let mut b = builder("lu", Suite::Polybench, p);
    let a = b.array("A", n * n);
    b.par_for(n as u64, |b, i| {
        b.for_(half as u64, |b, j| {
            b.load(a, i * n + j);
            b.for_(half as u64, |b, k| {
                b.load(a, i * n + k);
                b.load(a, k * n + j);
                b.compute(2);
            });
            b.compute_div(1);
            b.store(a, i * n + j);
        });
    });
    b.build()
}

/// Triangular solver `L·x = b` (row-parallel approximation).
pub fn trisolv(p: &KernelParams) -> BuildResult {
    let n = p.mat_side(1);
    let half = (n / 2).max(1);
    let mut b = builder("trisolv", Suite::Polybench, p);
    let l = b.array("L", n * n);
    let x = b.array("x", n);
    let bv = b.array("b", n);
    b.par_for(n as u64, |b, i| {
        b.load(bv, i);
        b.for_(half as u64, |b, j| {
            b.load(l, i * n + j);
            b.load(x, j);
            b.compute(2);
        });
        b.load(l, i * n + i);
        b.compute_div(1);
        b.store(x, i);
    });
    b.build()
}

/// Durbin's algorithm for Toeplitz systems (float-only, divide-heavy).
pub fn durbin(p: &KernelParams) -> BuildResult {
    let n = p.vec_len(3);
    let inner = (n / 2).max(1);
    let mut b = builder("durbin", Suite::Polybench, p);
    let r = b.array("r", n);
    let y = b.array("y", n);
    let z = b.array("z", n);
    // The outer recurrence is sequential; each step's inner sweep is the
    // parallel region (matching OpenMP ports of durbin).
    b.for_(8, |b, _k| {
        b.par_for(inner as u64, |b, i| {
            b.load(r, i);
            b.load(y, i);
            b.compute(2);
            b.store(z, i);
        });
        b.par_for(inner as u64, |b, i| {
            b.load(z, i);
            b.compute_div(1);
            b.store(y, i);
        });
    });
    b.build()
}

/// Modified Gram–Schmidt orthogonalisation (float-only).
pub fn gramschmidt(p: &KernelParams) -> BuildResult {
    let n = p.mat_side(2);
    let mut b = builder("gramschmidt", Suite::Polybench, p);
    let a = b.array("A", n * n);
    let q = b.array("Q", n * n);
    // For each column (sequential), normalise and update the trailing
    // columns in parallel.
    b.for_((n.min(16)) as u64, |b, k| {
        // norm of column k
        b.par_for(n as u64, |b, i| {
            b.load(a, i * n + k);
            b.compute(2);
        });
        // normalise
        b.par_for(n as u64, |b, i| {
            b.load(a, i * n + k);
            b.compute_div(1);
            b.store(q, i * n + k);
        });
    });
    b.build()
}

/// 1D Jacobi stencil (two sweeps per time step).
pub fn jacobi_1d(p: &KernelParams) -> BuildResult {
    let n = p.vec_len(2);
    let interior = (n - 2) as u64;
    let mut b = builder("jacobi-1d", Suite::Polybench, p);
    let a = b.array("A", n);
    let bb = b.array("B", n);
    b.for_(4, |b, _t| {
        b.par_for(interior, |b, i| {
            b.load(a, i);
            b.load(a, i + 1);
            b.load(a, i + 2);
            b.compute(3);
            b.store(bb, i + 1);
        });
        b.par_for(interior, |b, i| {
            b.load(bb, i);
            b.load(bb, i + 1);
            b.load(bb, i + 2);
            b.compute(3);
            b.store(a, i + 1);
        });
    });
    b.build()
}

/// 2D Jacobi five-point stencil.
pub fn jacobi_2d(p: &KernelParams) -> BuildResult {
    let n = p.mat_side(2);
    let interior = (n - 2) as u64;
    let mut b = builder("jacobi-2d", Suite::Polybench, p);
    let a = b.array("A", n * n);
    let bb = b.array("B", n * n);
    b.for_(2, |b, _t| {
        for (src, dst) in [(a, bb), (bb, a)] {
            b.par_for(interior, |b, i| {
                b.for_(interior, |b, j| {
                    b.load(src, (i + 1) * n + (j + 1));
                    b.load(src, (i + 1) * n + j);
                    b.load(src, (i + 1) * n + (j + 2));
                    b.load(src, i * n + (j + 1));
                    b.load(src, (i + 2) * n + (j + 1));
                    b.compute(5);
                    b.store(dst, (i + 1) * n + (j + 1));
                });
            });
        }
    });
    b.build()
}

/// Gauss–Seidel 2D sweep (wavefront parallelised by rows).
pub fn seidel_2d(p: &KernelParams) -> BuildResult {
    let n = p.mat_side(1);
    let interior = (n - 2) as u64;
    let mut b = builder("seidel-2d", Suite::Polybench, p);
    let a = b.array("A", n * n);
    b.for_(2, |b, _t| {
        b.par_for(interior, |b, i| {
            b.for_(interior, |b, j| {
                b.load(a, i * n + j);
                b.load(a, i * n + (j + 1));
                b.load(a, i * n + (j + 2));
                b.load(a, (i + 1) * n + j);
                b.load(a, (i + 1) * n + (j + 1));
                b.load(a, (i + 1) * n + (j + 2));
                b.load(a, (i + 2) * n + j);
                b.load(a, (i + 2) * n + (j + 1));
                b.load(a, (i + 2) * n + (j + 2));
                b.compute(9);
                b.store(a, (i + 1) * n + (j + 1));
            });
        });
    });
    b.build()
}

/// 2D finite-difference time-domain kernel (three field arrays).
pub fn fdtd_2d(p: &KernelParams) -> BuildResult {
    let n = p.mat_side(3);
    let m = (n - 1) as u64;
    let mut b = builder("fdtd-2d", Suite::Polybench, p);
    let ex = b.array("ex", n * n);
    let ey = b.array("ey", n * n);
    let hz = b.array("hz", n * n);
    b.for_(2, |b, _t| {
        b.par_for(m, |b, i| {
            b.for_(m, |b, j| {
                b.load(ey, (i + 1) * n + j);
                b.load(hz, (i + 1) * n + j);
                b.load(hz, i * n + j);
                b.compute(2);
                b.store(ey, (i + 1) * n + j);
            });
        });
        b.par_for(m, |b, i| {
            b.for_(m, |b, j| {
                b.load(ex, i * n + (j + 1));
                b.load(hz, i * n + (j + 1));
                b.load(hz, i * n + j);
                b.compute(2);
                b.store(ex, i * n + (j + 1));
            });
        });
        b.par_for(m, |b, i| {
            b.for_(m, |b, j| {
                b.load(hz, i * n + j);
                b.load(ex, i * n + (j + 1));
                b.load(ex, i * n + j);
                b.load(ey, (i + 1) * n + j);
                b.load(ey, i * n + j);
                b.compute(5);
                b.store(hz, i * n + j);
            });
        });
    });
    b.build()
}

/// Pearson correlation matrix (float-only: stddev divides).
pub fn correlation(p: &KernelParams) -> BuildResult {
    let n = p.mat_side(2);
    let half = (n / 2).max(1);
    let mut b = builder("correlation", Suite::Polybench, p);
    let data = b.array("data", n * n);
    let corr = b.array("corr", n * n);
    let mean = b.array("mean", n);
    let std = b.array("stddev", n);
    b.par_for(n as u64, |b, j| {
        b.for_(n as u64, |b, i| {
            b.load(data, i * n + j);
            b.compute(1);
        });
        b.compute_div(1);
        b.store(mean, j);
    });
    b.par_for(n as u64, |b, j| {
        b.load(mean, j);
        b.for_(n as u64, |b, i| {
            b.load(data, i * n + j);
            b.compute(3);
        });
        b.compute_div(2); // divide + sqrt
        b.store(std, j);
    });
    b.par_for(n as u64, |b, i| {
        b.load(std, i);
        b.for_(half as u64, |b, j| {
            b.load(std, j);
            b.for_(half as u64, |b, k| {
                b.load(data, k * n + i);
                b.load(data, k * n + j);
                b.compute(2);
            });
            b.compute_div(1);
            b.store(corr, i * n + j);
        });
    });
    b.build()
}

/// Covariance matrix.
pub fn covariance(p: &KernelParams) -> BuildResult {
    let n = p.mat_side(2);
    let half = (n / 2).max(1);
    let mut b = builder("covariance", Suite::Polybench, p);
    let data = b.array("data", n * n);
    let cov = b.array("cov", n * n);
    let mean = b.array("mean", n);
    b.par_for(n as u64, |b, j| {
        b.for_(n as u64, |b, i| {
            b.load(data, i * n + j);
            b.compute(1);
        });
        b.compute_div(1);
        b.store(mean, j);
    });
    b.par_for(n as u64, |b, i| {
        b.for_(half as u64, |b, j| {
            b.for_(n as u64, |b, k| {
                b.load(data, k * n + i);
                b.load(data, k * n + j);
                b.load(mean, i);
                b.load(mean, j);
                b.compute(3);
            });
            b.compute_div(1);
            b.store(cov, i * n + j);
        });
    });
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_ir::{DType, RawFeatures};

    type KernelTable = Vec<(&'static str, fn(&KernelParams) -> BuildResult)>;

    fn params() -> KernelParams {
        KernelParams::new(DType::F32, 2048)
    }

    #[test]
    fn all_polybench_kernels_validate() {
        let fns: KernelTable = vec![
            ("gemm", gemm),
            ("2mm", two_mm),
            ("3mm", three_mm),
            ("atax", atax),
            ("bicg", bicg),
            ("mvt", mvt),
            ("gemver", gemver),
            ("gesummv", gesummv),
            ("syrk", syrk),
            ("syr2k", syr2k),
            ("trmm", trmm),
            ("symm", symm),
            ("doitgen", doitgen),
            ("cholesky", cholesky),
            ("lu", lu),
            ("trisolv", trisolv),
            ("durbin", durbin),
            ("gramschmidt", gramschmidt),
            ("jacobi-1d", jacobi_1d),
            ("jacobi-2d", jacobi_2d),
            ("seidel-2d", seidel_2d),
            ("fdtd-2d", fdtd_2d),
            ("correlation", correlation),
            ("covariance", covariance),
        ];
        assert_eq!(fns.len(), 24);
        for size in crate::params::PAYLOAD_SIZES {
            for dtype in DType::ALL {
                let p = KernelParams::new(dtype, size);
                for (name, f) in &fns {
                    let k = f(&p).unwrap_or_else(|e| panic!("{name}@{size}/{dtype}: {e}"));
                    assert_eq!(k.suite, Suite::Polybench);
                }
            }
        }
    }

    #[test]
    fn gemm_has_cubic_structure() {
        let k = gemm(&params()).expect("gemm");
        let raw = RawFeatures::extract(&k);
        assert!(raw.tcdm >= 4, "gemm touches C, A, B");
        assert!(raw.avgws > 0.0);
    }

    #[test]
    fn float_instances_contain_fp_work() {
        let k = gemm(&KernelParams::new(DType::F32, 2048)).expect("gemm");
        let mut fp = 0u64;
        k.visit(|s| {
            if let kernel_ir::Stmt::Fp(n) = s {
                fp += u64::from(*n);
            }
        });
        assert!(fp > 0);
    }

    #[test]
    fn int_instances_contain_no_fp_work() {
        let k = gemm(&KernelParams::new(DType::I32, 2048)).expect("gemm");
        k.visit(|s| {
            assert!(
                !matches!(s, kernel_ir::Stmt::Fp(_) | kernel_ir::Stmt::FpDiv(_)),
                "i32 gemm must not contain FP ops"
            );
        });
    }
}

//! # pulp-kernels — the 59-kernel OpenMP benchmark dataset
//!
//! The paper's dataset is "a collection of three suites of benchmarks, for
//! a total of 59 distinct kernels written in C": Polybench, UTDSP, and a
//! custom suite of stress kernels. Each kernel is parametric in the data
//! type (`i32`/`f32`) and the payload size (512 B – 32 KiB); a handful of
//! kernels only make sense for one data type (e.g. FFT is float-only,
//! histogram integer-only), giving the paper's 448 samples.
//!
//! # Examples
//!
//! ```
//! use pulp_kernels::{all_samples, registry, KernelParams};
//! use kernel_ir::DType;
//!
//! let defs = registry();
//! assert_eq!(defs.len(), 59);
//! assert_eq!(all_samples().len(), 448);
//!
//! let gemm = defs.iter().find(|d| d.name == "gemm").expect("gemm exists");
//! let kernel = gemm
//!     .build(&KernelParams::new(DType::F32, 2048))
//!     .expect("valid instantiation");
//! assert_eq!(kernel.name, "gemm");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod custom;
pub mod extra;
pub mod params;
pub mod polybench;
pub mod utdsp;

pub use params::{builder, KernelParams, PAYLOAD_SIZES};

use kernel_ir::{DType, Kernel, Suite, ValidateKernelError};
use serde::{Deserialize, Serialize};

/// Builder function of one dataset kernel.
pub type KernelFn = fn(&KernelParams) -> Result<Kernel, ValidateKernelError>;

const BOTH: &[DType] = &[DType::I32, DType::F32];
const F32_ONLY: &[DType] = &[DType::F32];
const I32_ONLY: &[DType] = &[DType::I32];

/// One dataset kernel: identity plus its builder.
#[derive(Clone, Copy)]
pub struct KernelDef {
    /// Kernel name (unique within the dataset).
    pub name: &'static str,
    /// Originating suite.
    pub suite: Suite,
    /// Data types this kernel supports.
    pub dtypes: &'static [DType],
    build_fn: KernelFn,
}

impl std::fmt::Debug for KernelDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelDef")
            .field("name", &self.name)
            .field("suite", &self.suite)
            .field("dtypes", &self.dtypes)
            .finish_non_exhaustive()
    }
}

/// Error returned when instantiating a kernel for an unsupported type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsupportedDtypeError {
    /// The kernel.
    pub kernel: &'static str,
    /// The requested type.
    pub dtype: DType,
}

impl std::fmt::Display for UnsupportedDtypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "kernel {} does not support {}", self.kernel, self.dtype)
    }
}

impl std::error::Error for UnsupportedDtypeError {}

impl KernelDef {
    /// Instantiates the kernel for `params`.
    ///
    /// # Errors
    ///
    /// Returns a validation error if the instantiation is structurally
    /// invalid (never expected for in-range payload sizes).
    ///
    /// # Panics
    ///
    /// Panics if `params.dtype` is not in [`KernelDef::dtypes`]; use
    /// [`KernelDef::supports`] to check first.
    pub fn build(&self, params: &KernelParams) -> Result<Kernel, ValidateKernelError> {
        assert!(
            self.supports(params.dtype),
            "kernel {} does not support {}",
            self.name,
            params.dtype
        );
        (self.build_fn)(params)
    }

    /// Returns `true` when the kernel supports `dtype`.
    pub fn supports(&self, dtype: DType) -> bool {
        self.dtypes.contains(&dtype)
    }
}

macro_rules! defs {
    ($($suite:ident / $name:literal : $path:path [$dtypes:expr]),* $(,)?) => {
        vec![$(KernelDef {
            name: $name,
            suite: Suite::$suite,
            dtypes: $dtypes,
            build_fn: $path,
        }),*]
    };
}

/// The full 59-kernel registry.
pub fn registry() -> Vec<KernelDef> {
    defs![
        // Polybench (24).
        Polybench / "gemm": polybench::gemm[BOTH],
        Polybench / "2mm": polybench::two_mm[BOTH],
        Polybench / "3mm": polybench::three_mm[BOTH],
        Polybench / "atax": polybench::atax[BOTH],
        Polybench / "bicg": polybench::bicg[BOTH],
        Polybench / "mvt": polybench::mvt[BOTH],
        Polybench / "gemver": polybench::gemver[BOTH],
        Polybench / "gesummv": polybench::gesummv[BOTH],
        Polybench / "syrk": polybench::syrk[BOTH],
        Polybench / "syr2k": polybench::syr2k[BOTH],
        Polybench / "trmm": polybench::trmm[BOTH],
        Polybench / "symm": polybench::symm[BOTH],
        Polybench / "doitgen": polybench::doitgen[BOTH],
        Polybench / "cholesky": polybench::cholesky[F32_ONLY],
        Polybench / "lu": polybench::lu[BOTH],
        Polybench / "trisolv": polybench::trisolv[BOTH],
        Polybench / "durbin": polybench::durbin[F32_ONLY],
        Polybench / "gramschmidt": polybench::gramschmidt[F32_ONLY],
        Polybench / "jacobi-1d": polybench::jacobi_1d[BOTH],
        Polybench / "jacobi-2d": polybench::jacobi_2d[BOTH],
        Polybench / "seidel-2d": polybench::seidel_2d[BOTH],
        Polybench / "fdtd-2d": polybench::fdtd_2d[BOTH],
        Polybench / "correlation": polybench::correlation[F32_ONLY],
        Polybench / "covariance": polybench::covariance[BOTH],
        // UTDSP (17).
        Utdsp / "fir": utdsp::fir[BOTH],
        Utdsp / "iir": utdsp::iir[BOTH],
        Utdsp / "lmsfir": utdsp::lmsfir[BOTH],
        Utdsp / "latnrm": utdsp::latnrm[BOTH],
        Utdsp / "mult": utdsp::mult[BOTH],
        Utdsp / "fft": utdsp::fft[F32_ONLY],
        Utdsp / "histogram": utdsp::histogram[I32_ONLY],
        Utdsp / "adpcm": utdsp::adpcm[BOTH],
        Utdsp / "edge_detect": utdsp::edge_detect[BOTH],
        Utdsp / "compress": utdsp::compress[BOTH],
        Utdsp / "spectral": utdsp::spectral[BOTH],
        Utdsp / "dot_product": utdsp::dot_product[BOTH],
        Utdsp / "vec_scale": utdsp::vec_scale[BOTH],
        Utdsp / "autocorr": utdsp::autocorr[BOTH],
        Utdsp / "conv2d_5x5": utdsp::conv2d_5x5[BOTH],
        Utdsp / "decimate": utdsp::decimate[BOTH],
        Utdsp / "interp": utdsp::interp[BOTH],
        // Custom (18).
        Custom / "stream_copy": custom::stream_copy[BOTH],
        Custom / "stream_triad": custom::stream_triad[BOTH],
        Custom / "bank_hammer": custom::bank_hammer[BOTH],
        Custom / "bank_stride": custom::bank_stride[BOTH],
        Custom / "fpu_storm": custom::fpu_storm[BOTH],
        Custom / "reduction_critical": custom::reduction_critical[BOTH],
        Custom / "barrier_storm": custom::barrier_storm[BOTH],
        Custom / "imbalanced_chunks": custom::imbalanced_chunks[BOTH],
        Custom / "compute_dense": custom::compute_dense[BOTH],
        Custom / "memory_scatter": custom::memory_scatter[BOTH],
        Custom / "l2_stream": custom::l2_stream[BOTH],
        Custom / "mixed_phase": custom::mixed_phase[BOTH],
        Custom / "serial_fraction": custom::serial_fraction[BOTH],
        Custom / "tiny_regions": custom::tiny_regions[BOTH],
        Custom / "divergent_div": custom::divergent_div[BOTH],
        Custom / "conflict_free_scatter": custom::conflict_free_scatter[BOTH],
        Custom / "critical_light": custom::critical_light[BOTH],
        Custom / "saxpy_chunked": custom::saxpy_chunked[BOTH],
    ]
}

/// One dataset sample: a kernel instantiated for a type and payload size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SampleSpec {
    /// Index into [`registry`].
    pub kernel_index: usize,
    /// Element type.
    pub dtype: DType,
    /// Payload size in bytes.
    pub payload_bytes: usize,
}

impl SampleSpec {
    /// Kernel parameters for this sample.
    pub fn params(&self) -> KernelParams {
        KernelParams::new(self.dtype, self.payload_bytes)
    }
}

/// Enumerates the full 448-sample dataset in deterministic order.
pub fn all_samples() -> Vec<SampleSpec> {
    let mut out = Vec::new();
    for (kernel_index, def) in registry().iter().enumerate() {
        for &dtype in def.dtypes {
            for payload_bytes in PAYLOAD_SIZES {
                out.push(SampleSpec {
                    kernel_index,
                    dtype,
                    payload_bytes,
                });
            }
        }
    }
    out
}

/// Name/function pairs of the custom suite (used by tests).
#[doc(hidden)]
pub fn custom_kernel_fns() -> Vec<(&'static str, KernelFn)> {
    registry()
        .into_iter()
        .filter(|d| d.suite == Suite::Custom)
        .map(|d| (d.name, d.build_fn))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_59_unique_kernels() {
        let defs = registry();
        assert_eq!(defs.len(), 59);
        let mut names: Vec<&str> = defs.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 59, "duplicate kernel names");
    }

    #[test]
    fn suite_composition_matches_design() {
        let defs = registry();
        let count = |s: Suite| defs.iter().filter(|d| d.suite == s).count();
        assert_eq!(count(Suite::Polybench), 24);
        assert_eq!(count(Suite::Utdsp), 17);
        assert_eq!(count(Suite::Custom), 18);
    }

    #[test]
    fn dataset_has_448_samples_like_the_paper() {
        assert_eq!(all_samples().len(), 448);
    }

    #[test]
    fn six_kernels_are_single_dtype() {
        let singles: Vec<&str> = registry()
            .iter()
            .filter(|d| d.dtypes.len() == 1)
            .map(|d| d.name)
            .collect();
        assert_eq!(singles.len(), 6, "singles: {singles:?}");
    }

    #[test]
    fn every_sample_builds_and_validates() {
        let defs = registry();
        for spec in all_samples() {
            let def = &defs[spec.kernel_index];
            def.build(&spec.params()).unwrap_or_else(|e| {
                panic!("{}/{}/{}: {e}", def.name, spec.dtype, spec.payload_bytes)
            });
        }
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn unsupported_dtype_panics() {
        let defs = registry();
        let fft = defs.iter().find(|d| d.name == "fft").expect("fft");
        let _ = fft.build(&KernelParams::new(DType::I32, 512));
    }

    #[test]
    fn sample_order_is_deterministic() {
        assert_eq!(all_samples(), all_samples());
    }
}

//! Kernel instantiation parameters and sizing helpers.
//!
//! Every dataset kernel is parametric in the data type and the payload
//! size (the amount of data it processes). The paper instantiates each
//! kernel for `{i32, f32} × {512, 2048, 8196, 32768}` bytes, chosen so the
//! whole working set always fits in the TCDM (avoiding DMA traffic).

use kernel_ir::{DType, KernelBuilder, Suite};
use serde::{Deserialize, Serialize};

/// Payload sizes in bytes, as listed in the paper (§IV-B — including the
/// paper's own `8196` rather than the power of two).
pub const PAYLOAD_SIZES: [usize; 4] = [512, 2048, 8196, 32768];

/// Parameters of one kernel instantiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelParams {
    /// Element type.
    pub dtype: DType,
    /// Payload bytes the kernel processes.
    pub payload_bytes: usize,
}

impl KernelParams {
    /// Creates parameters.
    pub fn new(dtype: DType, payload_bytes: usize) -> Self {
        Self {
            dtype,
            payload_bytes,
        }
    }

    /// Total elements in the payload.
    pub fn elems(&self) -> usize {
        (self.payload_bytes / self.dtype.bytes()).max(1)
    }

    /// Elements per array when the payload is split over `arrays` arrays
    /// of equal length (at least 4 so boundary kernels stay non-trivial).
    pub fn vec_len(&self, arrays: usize) -> usize {
        (self.elems() / arrays.max(1)).max(4)
    }

    /// Side of square matrices when the payload is split over `arrays`
    /// equally-sized `n × n` matrices (at least 4).
    pub fn mat_side(&self, arrays: usize) -> usize {
        let per_array = self.elems() / arrays.max(1);
        ((per_array as f64).sqrt().floor() as usize).max(4)
    }
}

/// Opens a builder for a dataset kernel.
pub fn builder(name: &str, suite: Suite, p: &KernelParams) -> KernelBuilder {
    KernelBuilder::new(name, suite, p.dtype, p.payload_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elems_divides_by_element_size() {
        let p = KernelParams::new(DType::I32, 2048);
        assert_eq!(p.elems(), 512);
    }

    #[test]
    fn vec_len_splits_payload() {
        let p = KernelParams::new(DType::F32, 2048);
        assert_eq!(p.vec_len(2), 256);
        assert_eq!(p.vec_len(3), 170);
    }

    #[test]
    fn mat_side_is_square_root() {
        let p = KernelParams::new(DType::F32, 32768);
        // 8192 elems over 3 matrices = 2730 per matrix → side 52.
        assert_eq!(p.mat_side(3), 52);
    }

    #[test]
    fn tiny_payloads_clamp_to_usable_sizes() {
        let p = KernelParams::new(DType::I32, 16);
        assert!(p.vec_len(3) >= 4);
        assert!(p.mat_side(3) >= 4);
    }
}

//! Hand-written custom kernels.
//!
//! The paper augments the public suites with "a collection of hand-written
//! kernels designed to stimulate different patterns of memory accesses,
//! compute operations, and synchronisation primitives" — precisely the
//! mechanisms that move the minimum-energy core count away from 8:
//! bank conflicts, FPU sharing, critical-section serialisation, fork/join
//! overhead, load imbalance and off-cluster latency.

use crate::params::{builder, KernelParams};
use kernel_ir::{Kernel, Schedule, Suite, ValidateKernelError};

type BuildResult = Result<Kernel, ValidateKernelError>;

/// Pure streaming copy `y[i] = x[i]` — bandwidth-bound, conflict-free.
pub fn stream_copy(p: &KernelParams) -> BuildResult {
    let n = p.vec_len(2);
    let mut b = builder("stream_copy", Suite::Custom, p);
    let x = b.array("x", n);
    let y = b.array("y", n);
    b.par_for(n as u64, |b, i| {
        b.load(x, i);
        b.store(y, i);
    });
    b.build()
}

/// STREAM triad `a[i] = b[i] + s * c[i]`.
pub fn stream_triad(p: &KernelParams) -> BuildResult {
    let n = p.vec_len(3);
    let mut b = builder("stream_triad", Suite::Custom, p);
    let a = b.array("a", n);
    let bb = b.array("b", n);
    let c = b.array("c", n);
    b.par_for(n as u64, |b, i| {
        b.load(bb, i);
        b.load(c, i);
        b.compute(2);
        b.store(a, i);
    });
    b.build()
}

/// Every access lands in the same TCDM bank (stride = number of banks):
/// throughput saturates at one access/cycle, so extra cores only add
/// conflict stalls — the minimum-energy configuration is small.
pub fn bank_hammer(p: &KernelParams) -> BuildResult {
    let n = p.vec_len(1);
    let stride = 16usize; // bank count: same bank every time
    let rounds = (n / stride).max(1);
    let mut b = builder("bank_hammer", Suite::Custom, p);
    let x = b.array("x", n);
    b.par_for(rounds as u64, |b, i| {
        b.load(x, i * stride);
        b.alu(1);
        b.store(x, i * stride);
    });
    b.build()
}

/// Strided accesses that fold onto few banks (stride 8 → 2 banks).
pub fn bank_stride(p: &KernelParams) -> BuildResult {
    let n = p.vec_len(1);
    let stride = 8usize;
    let rounds = (n / stride).max(1);
    let mut b = builder("bank_stride", Suite::Custom, p);
    let x = b.array("x", n);
    b.par_for(rounds as u64, |b, i| {
        b.load(x, i * stride);
        b.load(x, i * stride + 1);
        b.compute(2);
        b.store(x, i * stride);
    });
    b.build()
}

/// Dense arithmetic with almost no memory traffic. On `f32` the shared
/// FPUs cap useful parallelism at 4 cores; on `i32` it scales to 8.
pub fn fpu_storm(p: &KernelParams) -> BuildResult {
    let n = p.vec_len(1);
    let mut b = builder("fpu_storm", Suite::Custom, p);
    let x = b.array("x", n);
    b.par_for(n as u64, |b, i| {
        b.load(x, i);
        b.compute(32);
        b.store(x, i);
    });
    b.build()
}

/// Global sum reduction through a critical section — serialisation makes
/// large teams counter-productive.
pub fn reduction_critical(p: &KernelParams) -> BuildResult {
    let n = p.vec_len(1);
    let mut b = builder("reduction_critical", Suite::Custom, p);
    let x = b.array("x", n);
    let acc = b.array("acc", 4);
    b.par_for(n as u64, |b, i| {
        b.load(x, i);
        b.compute(1);
        b.critical(|b| {
            b.load(acc, 0);
            b.compute(1);
            b.store(acc, 0);
        });
    });
    b.build()
}

/// Many tiny parallel regions: fork/join overhead dominates the payload.
pub fn barrier_storm(p: &KernelParams) -> BuildResult {
    let n = p.vec_len(1);
    let regions = 16usize;
    let per_region = (n / regions).max(1);
    let mut b = builder("barrier_storm", Suite::Custom, p);
    let x = b.array("x", n);
    b.for_(regions as u64, |b, _r| {
        b.par_for(per_region as u64, |b, i| {
            b.load(x, i);
            b.compute(1);
            b.store(x, i);
        });
    });
    b.build()
}

/// Chunked schedule with huge chunks: the team is load-imbalanced and the
/// idle cores sleep at the barrier.
pub fn imbalanced_chunks(p: &KernelParams) -> BuildResult {
    let n = p.vec_len(1);
    let chunk = (n / 3).max(1);
    let mut b = builder("imbalanced_chunks", Suite::Custom, p);
    let x = b.array("x", n);
    b.par_for_sched(n as u64, Schedule::Chunked(chunk), |b, i| {
        b.load(x, i);
        b.compute(4);
        b.store(x, i);
    });
    b.build()
}

/// Embarrassingly-parallel dense compute: the best case for 8 cores.
pub fn compute_dense(p: &KernelParams) -> BuildResult {
    let n = p.vec_len(1);
    let mut b = builder("compute_dense", Suite::Custom, p);
    let x = b.array("x", n);
    b.par_for(n as u64, |b, i| {
        b.load(x, i);
        b.alu(12); // integer bookkeeping in both variants
        b.compute(4);
        b.store(x, i);
    });
    b.build()
}

/// Scattered (large-stride) accesses spread across banks.
pub fn memory_scatter(p: &KernelParams) -> BuildResult {
    let n = p.vec_len(5);
    let stride = 5usize; // co-prime with the bank count
    let mut b = builder("memory_scatter", Suite::Custom, p);
    let x = b.array("x", n * (stride - 1) + stride);
    let y = b.array("y", n);
    b.par_for(n as u64, |b, i| {
        b.load(x, i * (stride - 1) + 1);
        b.compute(1);
        b.store(y, i);
    });
    b.build()
}

/// Streams from the off-cluster L2: every access pays the 15-cycle
/// latency, turning cores into active waiters.
pub fn l2_stream(p: &KernelParams) -> BuildResult {
    let n = p.vec_len(2);
    let mut b = builder("l2_stream", Suite::Custom, p);
    let x = b.array_l2("x_l2", n);
    let y = b.array("y", n);
    b.par_for(n as u64, |b, i| {
        b.load(x, i);
        b.compute(1);
        b.store(y, i);
    });
    b.build()
}

/// Alternating compute-heavy and memory-heavy phases with a barrier
/// between them.
pub fn mixed_phase(p: &KernelParams) -> BuildResult {
    let n = p.vec_len(2);
    let mut b = builder("mixed_phase", Suite::Custom, p);
    let x = b.array("x", n);
    let y = b.array("y", n);
    b.par_for(n as u64, |b, i| {
        b.load(x, i);
        b.compute(8);
        b.store(y, i);
    });
    b.barrier();
    b.par_for(n as u64, |b, i| {
        b.load(y, i);
        b.load(x, i);
        b.store(x, i);
    });
    b.build()
}

/// A large sequential prologue followed by a small parallel region: the
/// serial fraction caps any speed-up (Amdahl).
pub fn serial_fraction(p: &KernelParams) -> BuildResult {
    let n = p.vec_len(1);
    let serial = (n * 3) / 4;
    let parallel = n - serial;
    let mut b = builder("serial_fraction", Suite::Custom, p);
    let x = b.array("x", n);
    b.for_(serial as u64, |b, i| {
        b.load(x, i);
        b.compute(2);
        b.store(x, i);
    });
    b.par_for(parallel as u64, |b, i| {
        b.load(x, i);
        b.compute(2);
        b.store(x, i);
    });
    b.build()
}

/// Parallel regions with tiny trip counts (low `avgws`).
pub fn tiny_regions(p: &KernelParams) -> BuildResult {
    let n = p.vec_len(1);
    let region = 8usize;
    let rounds = (n / region).max(1);
    let mut b = builder("tiny_regions", Suite::Custom, p);
    let x = b.array("x", n);
    b.for_(rounds as u64, |b, _r| {
        b.par_for(region as u64, |b, i| {
            b.load(x, i);
            b.compute(2);
            b.store(x, i);
        });
    });
    b.build()
}

/// Divide-dense arithmetic: long-latency non-pipelined units throttle
/// every core (and block the shared FPU on `f32`).
pub fn divergent_div(p: &KernelParams) -> BuildResult {
    let n = p.vec_len(1);
    let mut b = builder("divergent_div", Suite::Custom, p);
    let x = b.array("x", n);
    b.par_for(n as u64, |b, i| {
        b.load(x, i);
        b.compute_div(2);
        b.store(x, i);
    });
    b.build()
}

/// Unit-stride accesses with disjoint per-core footprints: cores collide
/// briefly when they leave the fork in lockstep, then self-stagger, so
/// conflicts stay a small fraction of the traffic.
pub fn conflict_free_scatter(p: &KernelParams) -> BuildResult {
    let n = p.vec_len(2);
    let mut b = builder("conflict_free_scatter", Suite::Custom, p);
    let x = b.array("x", n);
    let y = b.array("y", n);
    b.par_for(n as u64, |b, i| {
        b.load(x, i);
        b.alu(2);
        b.store(y, i);
    });
    b.build()
}

/// Mostly-parallel compute with a light critical section every iteration.
pub fn critical_light(p: &KernelParams) -> BuildResult {
    let n = p.vec_len(1);
    let mut b = builder("critical_light", Suite::Custom, p);
    let x = b.array("x", n);
    let acc = b.array("acc", 4);
    b.par_for(n as u64, |b, i| {
        b.load(x, i);
        b.compute(12);
        b.critical(|b| {
            b.load(acc, 0);
            b.alu(1);
            b.store(acc, 0);
        });
    });
    b.build()
}

/// SAXPY with a round-robin chunked schedule.
pub fn saxpy_chunked(p: &KernelParams) -> BuildResult {
    let n = p.vec_len(2);
    let mut b = builder("saxpy_chunked", Suite::Custom, p);
    let x = b.array("x", n);
    let y = b.array("y", n);
    b.par_for_sched(n as u64, Schedule::Chunked(16), |b, i| {
        b.load(x, i);
        b.load(y, i);
        b.compute(2);
        b.store(y, i);
    });
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_ir::{lower, DType};
    use pulp_sim::{simulate, ClusterConfig};

    #[test]
    fn all_custom_kernels_validate() {
        let fns = crate::custom_kernel_fns();
        assert_eq!(fns.len(), 18);
        for size in crate::params::PAYLOAD_SIZES {
            for dtype in DType::ALL {
                let p = KernelParams::new(dtype, size);
                for (name, f) in &fns {
                    let k = f(&p).unwrap_or_else(|e| panic!("{name}@{size}/{dtype}: {e}"));
                    assert_eq!(k.suite, Suite::Custom);
                }
            }
        }
    }

    #[test]
    fn bank_hammer_conflicts_grow_with_team() {
        let cfg = ClusterConfig::default();
        let k = bank_hammer(&KernelParams::new(DType::I32, 2048)).expect("kernel");
        let conflicts = |team: usize| {
            let lowered = lower(&k, team, &cfg).expect("lower");
            simulate(&cfg, &lowered.program)
                .expect("simulate")
                .l1_conflicts()
        };
        assert_eq!(conflicts(1), 0);
        assert!(conflicts(8) > conflicts(2), "more cores, more conflicts");
    }

    #[test]
    fn conflict_free_scatter_has_no_conflicts() {
        let cfg = ClusterConfig::default();
        let k = conflict_free_scatter(&KernelParams::new(DType::I32, 2048)).expect("kernel");
        let lowered = lower(&k, 8, &cfg).expect("lower");
        let stats = simulate(&cfg, &lowered.program).expect("simulate");
        // Static chunking: cores touch disjoint contiguous ranges; the
        // lockstep start causes a short conflict cascade that must stay a
        // small fraction of the traffic.
        assert!(
            stats.l1_conflicts() * 5 < stats.l1_reads() + stats.l1_writes(),
            "conflicts {} vs accesses {}",
            stats.l1_conflicts(),
            stats.l1_reads() + stats.l1_writes()
        );
    }

    #[test]
    fn l2_stream_touches_off_cluster_memory() {
        let cfg = ClusterConfig::default();
        let k = l2_stream(&KernelParams::new(DType::I32, 2048)).expect("kernel");
        let lowered = lower(&k, 4, &cfg).expect("lower");
        let stats = simulate(&cfg, &lowered.program).expect("simulate");
        let l2: u64 = stats.cores.iter().map(|c| c.l2_ops).sum();
        assert!(l2 > 0, "expected L2 traffic");
    }

    #[test]
    fn fpu_storm_dtype_changes_contention() {
        let cfg = ClusterConfig::default();
        let run = |dtype| {
            let k = fpu_storm(&KernelParams::new(dtype, 2048)).expect("kernel");
            let lowered = lower(&k, 8, &cfg).expect("lower");
            let s = simulate(&cfg, &lowered.program).expect("simulate");
            s.cores.iter().map(|c| c.idle_cycles).sum::<u64>()
        };
        let f32_stalls = run(DType::F32);
        let i32_stalls = run(DType::I32);
        assert!(
            f32_stalls > 4 * i32_stalls.max(1),
            "f32 {f32_stalls} vs i32 {i32_stalls}: FPU sharing must bite"
        );
    }
}

//! Extension kernels beyond the paper's 59-kernel dataset.
//!
//! The paper's future work proposes to "model DMA transfers and memory
//! hierarchy". These kernels exercise that model: the same computation
//! expressed (a) reading the off-cluster L2 directly on every access, and
//! (b) staging tiles into the TCDM with the cluster DMA before computing —
//! the canonical PULP programming pattern the dataset deliberately avoids.
//!
//! They are *not* part of [`crate::registry`] (the dataset stays at the
//! paper's 59 kernels); the `dma_staging` example and the ablation tests
//! consume them directly.

use crate::params::{builder, KernelParams};
use kernel_ir::{Kernel, Suite, ValidateKernelError};

type BuildResult = Result<Kernel, ValidateKernelError>;

/// Elements processed per DMA tile.
pub const TILE_ELEMS: usize = 1024;

/// Direct-to-L2 variant: every element is loaded from and stored to the
/// off-cluster memory, paying the 15-cycle latency per access.
pub fn l2_direct_scale(p: &KernelParams) -> BuildResult {
    let n = p.elems().max(TILE_ELEMS);
    let mut b = builder("l2_direct_scale", Suite::Custom, p);
    let data = b.array_l2("data_l2", n);
    b.par_for(n as u64, |b, i| {
        b.load(data, i);
        b.compute(2);
        b.store(data, i);
    });
    b.build()
}

/// DMA-staged variant of [`l2_direct_scale`]: a sequential tiling loop
/// stages each tile into the TCDM, a parallel region computes on it, and
/// the DMA writes it back.
pub fn dma_tiled_scale(p: &KernelParams) -> BuildResult {
    let n = p.elems().max(TILE_ELEMS);
    let tiles = n.div_ceil(TILE_ELEMS);
    let mut b = builder("dma_tiled_scale", Suite::Custom, p);
    let data = b.array_l2("data_l2", n);
    let tile = b.array("tile", TILE_ELEMS);
    b.for_(tiles as u64, |b, _t| {
        b.dma_in(data, tile, TILE_ELEMS as u64);
        b.par_for(TILE_ELEMS as u64, |b, i| {
            b.load(tile, i);
            b.compute(2);
            b.store(tile, i);
        });
        b.dma_out(data, tile, TILE_ELEMS as u64);
    });
    b.build()
}

/// Double-buffered variant: while the team computes on one tile, the DMA
/// prefetches the next into the other — the canonical overlap pattern.
pub fn dma_double_buffer_scale(p: &KernelParams) -> BuildResult {
    let n = p.elems().max(2 * TILE_ELEMS);
    let pairs = n.div_ceil(2 * TILE_ELEMS);
    let mut b = builder("dma_double_buffer_scale", Suite::Custom, p);
    let data = b.array_l2("data_l2", n);
    let tile_a = b.array("tile_a", TILE_ELEMS);
    let tile_b = b.array("tile_b", TILE_ELEMS);
    let words = TILE_ELEMS as u64;
    b.dma_in(data, tile_a, words);
    b.for_(pairs as u64, |b, _pair| {
        // Prefetch the next tile while computing the current one.
        b.dma_in_async(data, tile_b, words);
        b.par_for(TILE_ELEMS as u64, |b, i| {
            b.load(tile_a, i);
            b.compute(2);
            b.store(tile_a, i);
        });
        b.dma_wait();
        b.dma_in_async(data, tile_a, words);
        b.par_for(TILE_ELEMS as u64, |b, i| {
            b.load(tile_b, i);
            b.compute(2);
            b.store(tile_b, i);
        });
        b.dma_wait();
    });
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_ir::{lower, DType};
    use pulp_energy_model::{energy_of, EnergyModel};
    use pulp_sim::{simulate, ClusterConfig};

    fn run(kernel: &Kernel, team: usize) -> (u64, f64) {
        let cfg = ClusterConfig::default();
        let lowered = lower(kernel, team, &cfg).expect("lower");
        let stats = simulate(&cfg, &lowered.program).expect("simulate");
        (
            stats.cycles,
            energy_of(&stats, &EnergyModel::table1(), &cfg).total(),
        )
    }

    #[test]
    fn both_variants_build_and_run() {
        let p = KernelParams::new(DType::I32, 2048);
        let direct = l2_direct_scale(&p).expect("direct");
        let tiled = dma_tiled_scale(&p).expect("tiled");
        for team in [1, 4, 8] {
            let _ = run(&direct, team);
            let _ = run(&tiled, team);
        }
    }

    #[test]
    fn dma_staging_beats_direct_l2_access() {
        let p = KernelParams::new(DType::I32, 8196);
        let direct = l2_direct_scale(&p).expect("direct");
        let tiled = dma_tiled_scale(&p).expect("tiled");
        let (c_direct, e_direct) = run(&direct, 8);
        let (c_tiled, e_tiled) = run(&tiled, 8);
        assert!(
            (c_tiled as f64) < 0.9 * c_direct as f64,
            "staging should be clearly faster: {c_tiled} vs {c_direct} cycles"
        );
        assert!(
            e_tiled < e_direct,
            "staging should save energy: {e_tiled} vs {e_direct} fJ"
        );
    }

    #[test]
    fn double_buffering_overlaps_transfer_and_compute() {
        let p = KernelParams::new(DType::I32, 32768);
        let blocking = dma_tiled_scale(&p).expect("tiled");
        let overlapped = dma_double_buffer_scale(&p).expect("double buffer");
        let (c_blocking, _) = run(&blocking, 8);
        let (c_overlap, _) = run(&overlapped, 8);
        assert!(
            c_overlap < c_blocking,
            "overlap should hide DMA time: {c_overlap} vs {c_blocking}"
        );
    }

    #[test]
    fn double_buffer_moves_at_least_the_payload() {
        let p = KernelParams::new(DType::I32, 8196);
        let k = dma_double_buffer_scale(&p).expect("double buffer");
        let cfg = ClusterConfig::default();
        let lowered = lower(&k, 4, &cfg).expect("lower");
        let stats = simulate(&cfg, &lowered.program).expect("simulate");
        assert!(stats.dma.words_transferred as usize >= p.elems());
    }

    #[test]
    fn dma_engine_activity_is_recorded() {
        let p = KernelParams::new(DType::I32, 2048);
        let tiled = dma_tiled_scale(&p).expect("tiled");
        let cfg = ClusterConfig::default();
        let lowered = lower(&tiled, 4, &cfg).expect("lower");
        let stats = simulate(&cfg, &lowered.program).expect("simulate");
        let n = p.elems().max(TILE_ELEMS) as u64;
        // Each element moves in and out exactly once.
        assert_eq!(
            stats.dma.words_transferred,
            2 * n.div_ceil(TILE_ELEMS as u64) * TILE_ELEMS as u64
        );
        assert!(stats.dma.busy_cycles > 0);
    }

    #[test]
    fn dma_trace_parity() {
        use pulp_energy_model::stats_from_trace;
        use pulp_sim::{simulate_traced, TextSink};
        let p = KernelParams::new(DType::I32, 512);
        let tiled = dma_tiled_scale(&p).expect("tiled");
        let cfg = ClusterConfig::default();
        let lowered = lower(&tiled, 2, &cfg).expect("lower");
        let mut sink = TextSink::new();
        let direct =
            simulate_traced(&cfg, &lowered.program, 10_000_000, &mut sink).expect("simulate");
        let replayed = stats_from_trace(&sink.text, &cfg, 2).expect("replay");
        // Replay reconstructs architectural state; fast-forward span
        // counters are diagnostics the trace does not carry.
        assert_eq!(direct.without_fast_forward(), replayed);
    }
}

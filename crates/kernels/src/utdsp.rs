//! UTDSP kernels ported to the kernel IR.
//!
//! UTDSP "comprises a set of kernels designed for testing optimisation
//! targeting digital signal processors" (§IV-B): filters, transforms and
//! small linear-algebra routines with streaming access patterns.

use crate::params::{builder, KernelParams};
use kernel_ir::{Kernel, Schedule, Suite, ValidateKernelError};

type BuildResult = Result<Kernel, ValidateKernelError>;

/// Number of taps used by the filter kernels.
const TAPS: usize = 16;

/// Direct-form FIR filter.
pub fn fir(p: &KernelParams) -> BuildResult {
    let n = p.vec_len(2);
    let mut b = builder("fir", Suite::Utdsp, p);
    let x = b.array("x", n + TAPS);
    let y = b.array("y", n);
    let c = b.array("c", TAPS);
    b.par_for(n as u64, |b, i| {
        b.for_(TAPS as u64, |b, t| {
            b.load(x, i + t);
            b.load(c, t);
            b.compute(2);
        });
        b.store(y, i);
    });
    b.build()
}

/// Cascade of IIR biquad sections, parallel over independent channels.
pub fn iir(p: &KernelParams) -> BuildResult {
    let channels = 8usize;
    let n = (p.vec_len(2) / channels).max(4);
    let mut b = builder("iir", Suite::Utdsp, p);
    let x = b.array("x", channels * n);
    let y = b.array("y", channels * n);
    let coef = b.array("coef", 8);
    b.par_for(channels as u64, |b, ch| {
        // Each channel's recurrence is inherently serial.
        b.for_(n as u64, |b, i| {
            b.load(x, ch * n + i);
            b.load(coef, 0);
            b.load(coef, 1);
            b.compute(4); // two poles, two zeros
            b.store(y, ch * n + i);
        });
    });
    b.build()
}

/// Least-mean-squares adaptive FIR filter.
pub fn lmsfir(p: &KernelParams) -> BuildResult {
    let n = p.vec_len(2);
    let mut b = builder("lmsfir", Suite::Utdsp, p);
    let x = b.array("x", n + TAPS);
    let y = b.array("y", n);
    let c = b.array("c", TAPS);
    b.par_for(n as u64, |b, i| {
        // Filter.
        b.for_(TAPS as u64, |b, t| {
            b.load(x, i + t);
            b.load(c, t);
            b.compute(2);
        });
        b.store(y, i);
        // Coefficient update (error feedback).
        b.compute(2);
        b.for_(TAPS as u64, |b, t| {
            b.load(c, t);
            b.load(x, i + t);
            b.compute(2);
            b.store(c, t);
        });
    });
    b.build()
}

/// Normalised lattice filter (`latnrm`).
pub fn latnrm(p: &KernelParams) -> BuildResult {
    let stages = 8usize;
    let n = p.vec_len(2);
    let mut b = builder("latnrm", Suite::Utdsp, p);
    let x = b.array("x", n);
    let y = b.array("y", n);
    let k = b.array("k", stages * 2);
    b.par_for(n as u64, |b, i| {
        b.load(x, i);
        b.for_(stages as u64, |b, s| {
            b.load(k, s * 2);
            b.load(k, s * 2 + 1);
            b.compute(4); // two rotations per stage
        });
        b.store(y, i);
    });
    b.build()
}

/// Small square matrix multiply (`mult`).
pub fn mult(p: &KernelParams) -> BuildResult {
    let n = p.mat_side(3);
    let mut b = builder("mult", Suite::Utdsp, p);
    let a = b.array("A", n * n);
    let bb = b.array("B", n * n);
    let c = b.array("C", n * n);
    b.par_for(n as u64, |b, i| {
        b.for_(n as u64, |b, j| {
            b.for_(n as u64, |b, k| {
                b.load(a, i * n + k);
                b.load(bb, k * n + j);
                b.compute(2);
            });
            b.store(c, i * n + j);
        });
    });
    b.build()
}

/// Radix-2 FFT butterfly passes (float-only).
///
/// The bit-reversal permutation is not affine, so each of the `log2(n)`
/// stages is modelled as a sweep of `n/2` butterflies with streaming
/// access — preserving the stage structure, compute density and
/// memory-to-compute ratio of the transform.
pub fn fft(p: &KernelParams) -> BuildResult {
    let n = p.vec_len(2).next_power_of_two().max(8);
    let stages = n.trailing_zeros() as u64;
    let mut b = builder("fft", Suite::Utdsp, p);
    let re = b.array("re", n);
    let im = b.array("im", n);
    let tw = b.array("tw", n.max(2));
    b.for_(stages, |b, _s| {
        b.par_for((n / 2) as u64, |b, i| {
            b.load(re, i * 2);
            b.load(re, i * 2 + 1);
            b.load(im, i * 2);
            b.load(im, i * 2 + 1);
            b.load(tw, i);
            b.compute(10); // complex multiply + butterfly add/sub
            b.store(re, i * 2);
            b.store(re, i * 2 + 1);
            b.store(im, i * 2);
            b.store(im, i * 2 + 1);
        });
    });
    b.build()
}

/// Histogram with shared bins (integer-only; bin updates serialised).
pub fn histogram(p: &KernelParams) -> BuildResult {
    let bins = 64usize;
    let n = p.vec_len(1);
    let mut b = builder("histogram", Suite::Utdsp, p);
    let data = b.array("data", n);
    let hist = b.array("hist", bins);
    b.par_for(n as u64, |b, i| {
        b.load(data, i);
        b.alu(2); // bin computation
        b.critical(|b| {
            b.load(hist, 0);
            b.alu(1);
            b.store(hist, 0);
        });
    });
    b.build()
}

/// ADPCM encoder: per-sample prediction and quantisation.
pub fn adpcm(p: &KernelParams) -> BuildResult {
    let blocks = 8usize;
    let n = (p.vec_len(2) / blocks).max(4);
    let mut b = builder("adpcm", Suite::Utdsp, p);
    let x = b.array("x", blocks * n);
    let out = b.array("out", blocks * n);
    b.par_for(blocks as u64, |b, blk| {
        b.for_(n as u64, |b, i| {
            b.load(x, blk * n + i);
            b.compute(3); // predict
            b.compute_div(1); // quantise step
            b.alu(2); // clamp + pack
            b.store(out, blk * n + i);
        });
    });
    b.build()
}

/// Sobel-style 3×3 edge detection.
pub fn edge_detect(p: &KernelParams) -> BuildResult {
    let n = p.mat_side(2);
    let interior = (n - 2) as u64;
    let mut b = builder("edge_detect", Suite::Utdsp, p);
    let img = b.array("img", n * n);
    let out = b.array("out", n * n);
    b.par_for(interior, |b, i| {
        b.for_(interior, |b, j| {
            for di in 0..3usize {
                for dj in 0..3usize {
                    b.load(img, (i + di) * n + (j + dj));
                }
            }
            b.compute(9);
            b.store(out, (i + 1) * n + (j + 1));
        });
    });
    b.build()
}

/// Block DCT compression: 8×8 blocks, row and column passes.
pub fn compress(p: &KernelParams) -> BuildResult {
    let side = 8usize;
    let blocks = (p.elems() / (side * side)).max(1);
    let mut b = builder("compress", Suite::Utdsp, p);
    let img = b.array("img", blocks * side * side);
    let cos = b.array("cos", side * side);
    b.par_for(blocks as u64, |b, blk| {
        b.for_((side * side) as u64, |b, rc| {
            b.for_(side as u64, |b, k| {
                b.load(img, blk * (side * side) + k);
                b.load(cos, k * side);
                b.compute(2);
            });
            b.store(img, blk * (side * side) + rc);
        });
    });
    b.build()
}

/// Spectral estimation via windowed autocorrelation.
pub fn spectral(p: &KernelParams) -> BuildResult {
    let n = p.vec_len(2);
    let lags = TAPS.min(n);
    let mut b = builder("spectral", Suite::Utdsp, p);
    let x = b.array("x", n + lags);
    let r = b.array("r", lags.max(4));
    b.par_for(lags as u64, |b, k| {
        b.for_(n as u64, |b, i| {
            b.load(x, i);
            b.load(x, i + k);
            b.compute(2);
        });
        b.compute(2); // window weighting
        b.store(r, k);
    });
    b.build()
}

/// Dot product with per-core partial sums.
pub fn dot_product(p: &KernelParams) -> BuildResult {
    let n = p.vec_len(2);
    let mut b = builder("dot_product", Suite::Utdsp, p);
    let x = b.array("x", n);
    let y = b.array("y", n);
    let acc = b.array("acc", 8);
    b.par_for(n as u64, |b, i| {
        b.load(x, i);
        b.load(y, i);
        b.compute(2);
    });
    b.par_for(8, |b, c| {
        b.load(acc, c);
        b.compute(1);
        b.store(acc, c);
    });
    b.build()
}

/// Vector scaling `y = a * x`.
pub fn vec_scale(p: &KernelParams) -> BuildResult {
    let n = p.vec_len(2);
    let mut b = builder("vec_scale", Suite::Utdsp, p);
    let x = b.array("x", n);
    let y = b.array("y", n);
    b.par_for(n as u64, |b, i| {
        b.load(x, i);
        b.compute(1);
        b.store(y, i);
    });
    b.build()
}

/// Autocorrelation over a fixed lag window.
pub fn autocorr(p: &KernelParams) -> BuildResult {
    let n = p.vec_len(1);
    let lags = TAPS;
    let mut b = builder("autocorr", Suite::Utdsp, p);
    let x = b.array("x", n + lags);
    let r = b.array("r", lags);
    b.par_for(lags as u64, |b, k| {
        b.for_(n as u64, |b, i| {
            b.load(x, i);
            b.load(x, i + k);
            b.compute(2);
        });
        b.store(r, k);
    });
    b.build()
}

/// 5×5 2D convolution.
pub fn conv2d_5x5(p: &KernelParams) -> BuildResult {
    let n = p.mat_side(2);
    let interior = n.saturating_sub(4).max(1) as u64;
    let mut b = builder("conv2d_5x5", Suite::Utdsp, p);
    let img = b.array("img", n * n);
    let out = b.array("out", n * n);
    let ker = b.array("ker", 25);
    b.par_for(interior, |b, i| {
        b.for_(interior, |b, j| {
            b.for_(5, |b, di| {
                b.for_(5, |b, dj| {
                    b.load(img, (i + kernel_ir::Idx::from(di)) * n + j + dj);
                    b.load(ker, di * 5 + dj);
                    b.compute(2);
                });
            });
            b.store(out, (i + 2) * n + (j + 2));
        });
    });
    b.build()
}

/// FIR decimation by 2 (chunked schedule, as UTDSP ports often use).
pub fn decimate(p: &KernelParams) -> BuildResult {
    let n_out = (p.vec_len(2) / 2).max(4);
    let mut b = builder("decimate", Suite::Utdsp, p);
    let x = b.array("x", 2 * n_out + TAPS);
    let y = b.array("y", n_out);
    let c = b.array("c", TAPS);
    b.par_for_sched(n_out as u64, Schedule::Chunked(8), |b, i| {
        b.for_(TAPS as u64, |b, t| {
            b.load(x, i * 2 + t);
            b.load(c, t);
            b.compute(2);
        });
        b.store(y, i);
    });
    b.build()
}

/// FIR interpolation by 2.
pub fn interp(p: &KernelParams) -> BuildResult {
    let n_in = (p.vec_len(3)).max(4);
    let mut b = builder("interp", Suite::Utdsp, p);
    let x = b.array("x", n_in + TAPS / 2);
    let y = b.array("y", 2 * n_in);
    let c = b.array("c", TAPS);
    b.par_for(n_in as u64, |b, i| {
        for phase in 0..2usize {
            b.for_((TAPS / 2) as u64, |b, t| {
                b.load(x, i + t);
                b.load(c, t * 2 + phase);
                b.compute(2);
            });
            b.store(y, i * 2 + phase);
        }
    });
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_ir::DType;

    type KernelTable = Vec<(&'static str, fn(&KernelParams) -> BuildResult)>;

    #[test]
    fn all_utdsp_kernels_validate() {
        let fns: KernelTable = vec![
            ("fir", fir),
            ("iir", iir),
            ("lmsfir", lmsfir),
            ("latnrm", latnrm),
            ("mult", mult),
            ("fft", fft),
            ("histogram", histogram),
            ("adpcm", adpcm),
            ("edge_detect", edge_detect),
            ("compress", compress),
            ("spectral", spectral),
            ("dot_product", dot_product),
            ("vec_scale", vec_scale),
            ("autocorr", autocorr),
            ("conv2d_5x5", conv2d_5x5),
            ("decimate", decimate),
            ("interp", interp),
        ];
        assert_eq!(fns.len(), 17);
        for size in crate::params::PAYLOAD_SIZES {
            for dtype in DType::ALL {
                let p = KernelParams::new(dtype, size);
                for (name, f) in &fns {
                    let k = f(&p).unwrap_or_else(|e| panic!("{name}@{size}/{dtype}: {e}"));
                    assert_eq!(k.suite, Suite::Utdsp);
                }
            }
        }
    }

    #[test]
    fn histogram_uses_a_critical_section() {
        let k = histogram(&KernelParams::new(DType::I32, 2048)).expect("histogram");
        let mut criticals = 0;
        k.visit(|s| {
            if matches!(s, kernel_ir::Stmt::Critical(_)) {
                criticals += 1;
            }
        });
        assert_eq!(criticals, 1);
    }

    #[test]
    fn decimate_uses_chunked_schedule() {
        let k = decimate(&KernelParams::new(DType::F32, 2048)).expect("decimate");
        let mut chunked = false;
        k.visit(|s| {
            if let kernel_ir::Stmt::ParFor {
                sched: Schedule::Chunked(_),
                ..
            } = s
            {
                chunked = true;
            }
        });
        assert!(chunked);
    }

    #[test]
    fn fft_stage_count_is_log2() {
        let k = fft(&KernelParams::new(DType::F32, 2048)).expect("fft");
        let mut outer_trip = 0;
        let mut seen = false;
        k.visit(|s| {
            if let kernel_ir::Stmt::For { trip, .. } = s {
                if !seen {
                    outer_trip = *trip;
                    seen = true;
                }
            }
        });
        // 256 elems → 8 stages.
        assert_eq!(outer_trip, 8);
    }
}

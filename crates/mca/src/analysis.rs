//! Steady-state throughput analysis of an instruction block.
//!
//! Mirrors what LLVM-MCA does with `--iterations`: replay the block many
//! times through the abstract machine, assuming cache hits and perfect
//! branch prediction, and measure dispatch- and port-limited throughput.

use crate::features::McaFeatures;
use crate::machine::{decode, DISPATCH_WIDTH, NUM_PORTS};
use pulp_sim::OpKind;

/// Iterations replayed to reach steady state.
pub const DEFAULT_ITERATIONS: u64 = 64;

/// Analyses `block` replayed `iterations` times.
///
/// Returns all 13 MCA features of Table II(b). An empty block yields
/// all-zero features.
pub fn analyze_block(block: &[OpKind], iterations: u64) -> McaFeatures {
    if block.is_empty() || iterations == 0 {
        return McaFeatures::zero();
    }
    let mut port_busy = [0u64; NUM_PORTS];
    let mut int_div_busy = 0u64;
    let mut fp_div_busy = 0u64;
    let mut uops = 0u64;
    let mut insns = 0u64;

    // One iteration of the block decides the per-iteration pressures;
    // steady state scales linearly, so decode once and multiply.
    for &kind in block {
        insns += 1;
        for uop in decode(kind) {
            uops += 1;
            int_div_busy += uop.int_div;
            fp_div_busy += uop.fp_div;
            if uop.ports.is_empty() {
                continue;
            }
            // Greedy least-loaded eligible port, deterministic tie-break on
            // port order.
            let &best = uop
                .ports
                .iter()
                .min_by_key(|&&p| port_busy[p])
                .expect("non-empty port set");
            port_busy[best] += 1;
        }
    }

    insns *= iterations;
    uops *= iterations;
    int_div_busy *= iterations;
    fp_div_busy *= iterations;
    for b in &mut port_busy {
        *b *= iterations;
    }

    let dispatch_cycles = uops.div_ceil(DISPATCH_WIDTH);
    let resource_cycles = port_busy
        .iter()
        .copied()
        .chain([int_div_busy, fp_div_busy])
        .max()
        .unwrap_or(0);
    let cycles = dispatch_cycles.max(resource_cycles).max(1);
    let cf = cycles as f64;

    let mut rp = [0.0f64; NUM_PORTS];
    for (i, b) in port_busy.iter().enumerate() {
        rp[i] = *b as f64 / cf;
    }
    McaFeatures {
        uops_per_cycle: uops as f64 / cf,
        ipc: insns as f64 / cf,
        rblock_throughput: cf / iterations as f64,
        rp_div: int_div_busy as f64 / cf,
        rp_fp_div: fp_div_busy as f64 / cf,
        rp,
    }
}

/// Extracts the hot-block instruction mix of a kernel.
///
/// The block is the static instruction stream of the kernel body — opcode
/// classes in program order, with one ALU + branch pair per loop (the
/// loop-control code MCA would see in the assembly). This matches what the
/// paper feeds MCA: the compiled kernel text, independent of trip counts.
pub fn kernel_block(kernel: &kernel_ir::Kernel) -> Vec<OpKind> {
    let mut block = Vec::new();
    kernel.visit(|s| match s {
        kernel_ir::Stmt::For { .. } | kernel_ir::Stmt::ParFor { .. } => {
            block.push(OpKind::Alu);
            block.push(OpKind::Branch);
        }
        kernel_ir::Stmt::Load { .. } => block.push(OpKind::Load),
        kernel_ir::Stmt::Store { .. } => block.push(OpKind::Store),
        kernel_ir::Stmt::Alu(n) => block.extend(std::iter::repeat_n(OpKind::Alu, *n as usize)),
        kernel_ir::Stmt::Mul(n) => block.extend(std::iter::repeat_n(OpKind::Mul, *n as usize)),
        kernel_ir::Stmt::Div(n) => block.extend(std::iter::repeat_n(OpKind::Div, *n as usize)),
        kernel_ir::Stmt::Fp(n) => block.extend(std::iter::repeat_n(
            OpKind::Fp(pulp_sim::FpOp::Mul),
            *n as usize,
        )),
        kernel_ir::Stmt::FpDiv(n) => block.extend(std::iter::repeat_n(
            OpKind::Fp(pulp_sim::FpOp::Div),
            *n as usize,
        )),
        kernel_ir::Stmt::Nop(n) => block.extend(std::iter::repeat_n(OpKind::Nop, *n as usize)),
        kernel_ir::Stmt::Barrier
        | kernel_ir::Stmt::Critical(_)
        | kernel_ir::Stmt::DmaTransfer { .. }
        | kernel_ir::Stmt::DmaWait => {}
    });
    block
}

/// Analyses a kernel's hot block with the default iteration count.
pub fn analyze_kernel(kernel: &kernel_ir::Kernel) -> McaFeatures {
    analyze_block(&kernel_block(kernel), DEFAULT_ITERATIONS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_ir::{DType, KernelBuilder, Suite};
    use pulp_sim::FpOp;

    #[test]
    fn empty_block_is_all_zero() {
        let f = analyze_block(&[], DEFAULT_ITERATIONS);
        assert_eq!(f.ipc, 0.0);
        assert_eq!(f.rblock_throughput, 0.0);
    }

    #[test]
    fn alu_block_is_dispatch_limited() {
        // 4 ALU ports, dispatch width 4: IPC = 4.
        let block = vec![OpKind::Alu; 16];
        let f = analyze_block(&block, 100);
        assert!((f.ipc - 4.0).abs() < 0.1, "ipc = {}", f.ipc);
        assert!((f.uops_per_cycle - 4.0).abs() < 0.1);
    }

    #[test]
    fn fp_block_is_port_limited() {
        // FP ops only go to P0/P1: throughput 2/cycle despite width 4.
        let block = vec![OpKind::Fp(FpOp::Mul); 16];
        let f = analyze_block(&block, 100);
        assert!((f.ipc - 2.0).abs() < 0.1, "ipc = {}", f.ipc);
        assert!(f.rp[0] > 0.9 && f.rp[1] > 0.9);
        assert!(f.rp[5] == 0.0);
    }

    #[test]
    fn divider_pressure_reported() {
        let block = vec![OpKind::Div, OpKind::Alu];
        let f = analyze_block(&block, 10);
        assert!(f.rp_div > 0.9, "int divider should saturate: {}", f.rp_div);
        assert_eq!(f.rp_fp_div, 0.0);
    }

    #[test]
    fn fp_divider_pressure_reported() {
        let block = vec![OpKind::Fp(FpOp::Div)];
        let f = analyze_block(&block, 10);
        assert!(f.rp_fp_div > 0.9);
    }

    #[test]
    fn loads_spread_over_agu_ports() {
        let block = vec![OpKind::Load; 8];
        let f = analyze_block(&block, 50);
        assert!(
            (f.rp[2] - f.rp[3]).abs() < 0.01,
            "loads balance across P2/P3"
        );
        assert!((f.ipc - 2.0).abs() < 0.1);
    }

    #[test]
    fn rbp_scales_with_block_size() {
        let small = analyze_block(&[OpKind::Alu; 4], 100);
        let large = analyze_block(&[OpKind::Alu; 8], 100);
        assert!((large.rblock_throughput / small.rblock_throughput - 2.0).abs() < 0.1);
    }

    #[test]
    fn kernel_block_reflects_structure() {
        let mut b = KernelBuilder::new("k", Suite::Custom, DType::F32, 64);
        let a = b.array("a", 16);
        b.par_for(16, |b, i| {
            b.load(a, i);
            b.compute(2);
            b.store(a, i);
        });
        let k = b.build().expect("valid");
        let block = kernel_block(&k);
        // loop(alu+branch) + load + 2 fp + store
        assert_eq!(block.len(), 6);
        assert_eq!(block.iter().filter(|k| k.is_fp()).count(), 2);
    }

    #[test]
    fn analysis_is_deterministic() {
        let block = vec![
            OpKind::Load,
            OpKind::Fp(FpOp::Mul),
            OpKind::Store,
            OpKind::Alu,
        ];
        let a = analyze_block(&block, DEFAULT_ITERATIONS);
        let b = analyze_block(&block, DEFAULT_ITERATIONS);
        assert_eq!(a.to_vec(), b.to_vec());
    }
}

//! # pulp-mca — static machine-code analysis
//!
//! A from-scratch stand-in for LLVM-MCA, the machine-code analyser whose
//! port-pressure outputs the paper uses as additional static features
//! (Table II(b)). The tool models the execution engine of a generic
//! out-of-order microarchitecture — *not* PULP — and reports how strongly
//! an instruction mix stresses each execution port, assuming cache hits
//! and perfect branch prediction. The paper treats these numbers as a
//! static *fingerprint* of the kernel.
//!
//! # Examples
//!
//! ```
//! use kernel_ir::{DType, KernelBuilder, Suite};
//! use pulp_mca::analyze_kernel;
//!
//! # fn main() -> Result<(), kernel_ir::ValidateKernelError> {
//! let mut b = KernelBuilder::new("dot", Suite::Custom, DType::F32, 512);
//! let x = b.array("x", 64);
//! let y = b.array("y", 64);
//! b.par_for(64, |b, i| {
//!     b.load(x, i);
//!     b.load(y, i);
//!     b.compute(2);
//! });
//! let kernel = b.build()?;
//! let mca = analyze_kernel(&kernel);
//! assert!(mca.ipc > 0.0);
//! assert!(mca.rp[2] > 0.0, "loads pressure the AGU ports");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod features;
pub mod machine;

pub use analysis::{analyze_block, analyze_kernel, kernel_block, DEFAULT_ITERATIONS};
pub use features::{render_report, McaFeatures, MCA_FEATURE_NAMES};
pub use machine::{decode, Uop, DISPATCH_WIDTH, NUM_PORTS};

//! Abstract out-of-order machine model.
//!
//! LLVM-MCA models the execution engine of an out-of-order
//! microarchitecture: instructions are decoded into micro-ops and
//! dispatched to execution *ports*. The paper uses MCA's port-pressure
//! outputs as a static "fingerprint" of the kernel — the machine being
//! modelled is deliberately *not* PULP; what matters is that the same
//! instruction mix always maps to the same pressure vector.
//!
//! This module defines an 8-port machine in the spirit of the one MCA
//! models by default (Table II(b) of the paper names the port roles):
//!
//! | Port | Role |
//! |------|------|
//! | P0   | other components (FP, div) |
//! | P1   | other components (FP, mul) |
//! | P2   | AGU, load data |
//! | P3   | AGU, load data |
//! | P4   | store data |
//! | P5   | INT ALU, vector ALU, LEA |
//! | P6   | INT ALU, branch |
//! | P7   | address generation unit |

use pulp_sim::{FpOp, OpKind};

/// Number of execution ports.
pub const NUM_PORTS: usize = 8;
/// Micro-ops dispatched per cycle.
pub const DISPATCH_WIDTH: u64 = 4;
/// Cycles the integer divider is blocked per divide.
pub const INT_DIV_OCCUPANCY: u64 = 8;
/// Cycles the FP divider is blocked per divide.
pub const FP_DIV_OCCUPANCY: u64 = 12;

/// One micro-op: the set of ports it may execute on plus extra divider
/// occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Uop {
    /// Candidate ports (indices into the port array); empty for uops that
    /// consume dispatch bandwidth only (NOPs).
    pub ports: &'static [usize],
    /// Cycles charged to the integer divider.
    pub int_div: u64,
    /// Cycles charged to the FP divider.
    pub fp_div: u64,
}

const ALU_PORTS: &[usize] = &[5, 6, 0, 1];
const MUL_PORTS: &[usize] = &[1];
const DIV_PORTS: &[usize] = &[0];
const FP_PORTS: &[usize] = &[0, 1];
const LOAD_PORTS: &[usize] = &[2, 3];
const STORE_DATA_PORTS: &[usize] = &[4];
const AGU_PORTS: &[usize] = &[7, 2, 3];
const BRANCH_PORTS: &[usize] = &[6];
const NO_PORTS: &[usize] = &[];

/// Decodes one instruction into its micro-ops.
pub fn decode(kind: OpKind) -> Vec<Uop> {
    let plain = |ports: &'static [usize]| Uop {
        ports,
        int_div: 0,
        fp_div: 0,
    };
    match kind {
        OpKind::Alu => vec![plain(ALU_PORTS)],
        OpKind::Mul => vec![plain(MUL_PORTS)],
        OpKind::Div => vec![Uop {
            ports: DIV_PORTS,
            int_div: INT_DIV_OCCUPANCY,
            fp_div: 0,
        }],
        OpKind::Fp(FpOp::Add) | OpKind::Fp(FpOp::Mul) => vec![plain(FP_PORTS)],
        OpKind::Fp(FpOp::Div) => {
            vec![Uop {
                ports: DIV_PORTS,
                int_div: 0,
                fp_div: FP_DIV_OCCUPANCY,
            }]
        }
        OpKind::Load => vec![plain(LOAD_PORTS)],
        // Stores split into a store-data uop and an address-generation uop.
        OpKind::Store => vec![plain(STORE_DATA_PORTS), plain(AGU_PORTS)],
        OpKind::Branch | OpKind::Jump => vec![plain(BRANCH_PORTS)],
        OpKind::Nop => vec![plain(NO_PORTS)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stores_produce_two_uops() {
        assert_eq!(decode(OpKind::Store).len(), 2);
        assert_eq!(decode(OpKind::Load).len(), 1);
    }

    #[test]
    fn divides_charge_divider_units() {
        let d = decode(OpKind::Div);
        assert_eq!(d[0].int_div, INT_DIV_OCCUPANCY);
        assert_eq!(d[0].fp_div, 0);
        let f = decode(OpKind::Fp(FpOp::Div));
        assert_eq!(f[0].fp_div, FP_DIV_OCCUPANCY);
    }

    #[test]
    fn nops_use_no_ports() {
        assert!(decode(OpKind::Nop)[0].ports.is_empty());
    }

    #[test]
    fn alu_is_widely_issuable() {
        assert_eq!(decode(OpKind::Alu)[0].ports.len(), 4);
    }
}

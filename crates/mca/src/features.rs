//! The MCA feature vector (Table II(b) of the paper).

use crate::machine::NUM_PORTS;
use serde::{Deserialize, Serialize};

/// Names of the 13 MCA features, in [`McaFeatures::to_vec`] order.
pub const MCA_FEATURE_NAMES: [&str; 13] = [
    "uOPSpc", "IPC", "RBP", "RPDiv", "RPFPDiv", "RP0", "RP1", "RP2", "RP3", "RP4", "RP5", "RP6",
    "RP7",
];

/// Machine-code-analyser features of one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McaFeatures {
    /// Micro-operations issued per cycle.
    pub uops_per_cycle: f64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Reverse block throughput (cycles per block iteration).
    pub rblock_throughput: f64,
    /// Resource pressure on the integer divider.
    pub rp_div: f64,
    /// Resource pressure on the floating-point divider.
    pub rp_fp_div: f64,
    /// Per-port resource pressures (P0..P7).
    pub rp: [f64; NUM_PORTS],
}

impl McaFeatures {
    /// The all-zero feature vector (empty kernels).
    pub fn zero() -> Self {
        Self {
            uops_per_cycle: 0.0,
            ipc: 0.0,
            rblock_throughput: 0.0,
            rp_div: 0.0,
            rp_fp_div: 0.0,
            rp: [0.0; NUM_PORTS],
        }
    }

    /// Flattens into the 13-element vector matching
    /// [`MCA_FEATURE_NAMES`].
    pub fn to_vec(&self) -> Vec<f64> {
        let mut v = vec![
            self.uops_per_cycle,
            self.ipc,
            self.rblock_throughput,
            self.rp_div,
            self.rp_fp_div,
        ];
        v.extend_from_slice(&self.rp);
        v
    }
}

/// Renders an LLVM-MCA-style summary report for a block of `insns`
/// instructions analysed into `features`.
///
/// ```text
/// Iterations:        64
/// Instructions:      6
/// uOps Per Cycle:    2.67
/// IPC:               2.29
/// Block RThroughput: 2.6
///
/// Resource pressure per cycle:
/// [Div] [FDiv] [P0] [P1] [P2] [P3] [P4] [P5] [P6] [P7]
///  0.00  0.00  0.38 ...
/// ```
pub fn render_report(insns: usize, iterations: u64, f: &McaFeatures) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Iterations:        {iterations}");
    let _ = writeln!(out, "Instructions:      {insns}");
    let _ = writeln!(out, "uOps Per Cycle:    {:.2}", f.uops_per_cycle);
    let _ = writeln!(out, "IPC:               {:.2}", f.ipc);
    let _ = writeln!(out, "Block RThroughput: {:.1}", f.rblock_throughput);
    let _ = writeln!(out);
    let _ = writeln!(out, "Resource pressure per cycle:");
    let _ = writeln!(
        out,
        "{:>6} {:>6} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5}",
        "[Div]", "[FDiv]", "[P0]", "[P1]", "[P2]", "[P3]", "[P4]", "[P5]", "[P6]", "[P7]"
    );
    let _ = write!(out, "{:>6.2} {:>6.2}", f.rp_div, f.rp_fp_div);
    for p in f.rp {
        let _ = write!(out, " {p:>5.2}");
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_matches_names() {
        assert_eq!(McaFeatures::zero().to_vec().len(), MCA_FEATURE_NAMES.len());
    }

    #[test]
    fn zero_is_all_zero() {
        assert!(McaFeatures::zero().to_vec().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn report_contains_all_sections() {
        let mut f = McaFeatures::zero();
        f.ipc = 2.29;
        f.rp[3] = 0.55;
        let r = render_report(6, 64, &f);
        assert!(r.contains("Iterations:        64"));
        assert!(r.contains("Instructions:      6"));
        assert!(r.contains("IPC:               2.29"));
        assert!(r.contains("[P7]"));
        assert!(r.contains("0.55"));
    }
}

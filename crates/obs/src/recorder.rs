//! Span/counter recorder with pluggable clock.

use crate::flight::TraceContext;
use serde::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

/// Handle to a span opened with [`Recorder::start`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub(crate) usize);

/// One recorded span: a named interval on a track.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (stage or component label).
    pub name: String,
    /// Category tag grouping related spans (e.g. `pipeline`, `energy`).
    pub cat: String,
    /// Track (thread lane) the span lives on; merged recorders get fresh
    /// tracks so their spans never interleave.
    pub track: u32,
    /// Start timestamp in clock ticks (µs under the wall clock).
    pub start: u64,
    /// End timestamp; equals `start` while the span is still open.
    pub end: u64,
    /// Nesting depth at open time (0 = top level).
    pub depth: usize,
    /// Index of the enclosing span in [`Recorder::spans`], if any.
    pub parent: Option<usize>,
    /// Free-form key/value annotations (sorted by key).
    pub args: BTreeMap<String, String>,
}

impl SpanRecord {
    /// Span length in clock ticks.
    pub fn duration(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// A named instantaneous marker.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Event name.
    pub name: String,
    /// Track the event belongs to.
    pub track: u32,
    /// Timestamp in clock ticks.
    pub ts: u64,
}

/// One sampled value of a counter series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterSample {
    /// Timestamp in clock ticks.
    pub ts: u64,
    /// Sampled value.
    pub value: f64,
}

#[derive(Debug, Clone)]
enum Clock {
    /// Real time; ticks are microseconds since recorder creation.
    Wall(Instant),
    /// Caller-driven time; ticks mean whatever the caller wants (tests use
    /// plain integers, the simulator bridge uses cycles).
    Manual(u64),
}

/// Collects spans, counters and events with either a wall or a manual
/// clock. Free of globals: pass `&mut Recorder` to whoever should report.
///
/// Span nesting follows open order per recorder: [`Recorder::start`] pushes
/// onto an open stack, [`Recorder::end`] closes (out-of-order ends close
/// the requested span and everything opened after it, keeping the stack
/// well-formed — Chrome's trace viewer requires proper nesting).
#[derive(Debug, Clone)]
pub struct Recorder {
    clock: Clock,
    spans: Vec<SpanRecord>,
    open: Vec<usize>,
    events: Vec<EventRecord>,
    counters: BTreeMap<String, Vec<CounterSample>>,
    track: u32,
    next_track: u32,
    trace: Option<TraceContext>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// Creates a recorder on the wall clock (ticks = µs since creation).
    pub fn new() -> Self {
        Self::with_clock(Clock::Wall(Instant::now()))
    }

    /// Creates a recorder on a manual clock starting at tick 0. Use
    /// [`Recorder::set_time`] to advance it; timing becomes fully
    /// deterministic (tests) or simulation-driven (ticks = cycles).
    pub fn manual() -> Self {
        Self::with_clock(Clock::Manual(0))
    }

    fn with_clock(clock: Clock) -> Self {
        Self {
            clock,
            spans: Vec::new(),
            open: Vec::new(),
            events: Vec::new(),
            counters: BTreeMap::new(),
            track: 0,
            next_track: 1,
            trace: None,
        }
    }

    /// Stamps this recorder with a request-scoped [`TraceContext`].
    ///
    /// The context identifies every span recorded here as part of one
    /// request tree: the trace id flows into
    /// [`crate::RequestTrace::from_recorder`] and the JSON dump, and a
    /// context with a parent span makes [`Recorder::merge`] re-home this
    /// recorder's root spans under that span of the merge target.
    pub fn set_trace(&mut self, trace: TraceContext) {
        self.trace = Some(trace);
    }

    /// Builder form of [`Recorder::set_trace`].
    #[must_use]
    pub fn with_trace(mut self, trace: TraceContext) -> Self {
        self.set_trace(trace);
        self
    }

    /// The trace context stamped on this recorder, if any.
    pub fn trace(&self) -> Option<TraceContext> {
        self.trace
    }

    /// Current tick count.
    pub fn now(&self) -> u64 {
        match &self.clock {
            Clock::Wall(t0) => t0.elapsed().as_micros() as u64,
            Clock::Manual(t) => *t,
        }
    }

    /// Moves a manual clock to `ticks` (no-op on the wall clock). Time may
    /// only move forward; earlier values are ignored.
    pub fn set_time(&mut self, ticks: u64) {
        if let Clock::Manual(t) = &mut self.clock {
            *t = (*t).max(ticks);
        }
    }

    /// Opens a span named `name` with an empty category.
    pub fn start(&mut self, name: &str) -> SpanId {
        self.start_cat(name, "")
    }

    /// Opens a span with an explicit category tag.
    pub fn start_cat(&mut self, name: &str, cat: &str) -> SpanId {
        let now = self.now();
        let parent = self.open.last().copied();
        let idx = self.spans.len();
        self.spans.push(SpanRecord {
            name: name.to_string(),
            cat: cat.to_string(),
            track: self.track,
            start: now,
            end: now,
            depth: self.open.len(),
            parent,
            args: BTreeMap::new(),
        });
        self.open.push(idx);
        SpanId(idx)
    }

    /// Closes `span` (and any spans opened after it still left open).
    pub fn end(&mut self, span: SpanId) {
        let now = self.now();
        while let Some(idx) = self.open.pop() {
            self.spans[idx].end = now;
            if idx == span.0 {
                return;
            }
        }
    }

    /// Runs `f` inside a span named `name`; the span closes when `f`
    /// returns (even through `?`-free early returns within `f`).
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> R) -> R {
        let id = self.start(name);
        let out = f(self);
        self.end(id);
        out
    }

    /// Attaches a key/value annotation to a span.
    pub fn annotate(&mut self, span: SpanId, key: &str, value: impl fmt::Display) {
        if let Some(s) = self.spans.get_mut(span.0) {
            s.args.insert(key.to_string(), value.to_string());
        }
    }

    /// Records an instantaneous marker.
    pub fn event(&mut self, name: &str) {
        let ts = self.now();
        self.events.push(EventRecord {
            name: name.to_string(),
            track: self.track,
            ts,
        });
    }

    /// Samples counter `name` at the current time.
    pub fn counter(&mut self, name: &str, value: f64) {
        let ts = self.now();
        self.counters
            .entry(name.to_string())
            .or_default()
            .push(CounterSample { ts, value });
    }

    /// Adds `delta` to counter `name`'s latest value (starting from 0).
    pub fn counter_add(&mut self, name: &str, delta: f64) {
        let last = self
            .counters
            .get(name)
            .and_then(|s| s.last())
            .map(|s| s.value)
            .unwrap_or(0.0);
        self.counter(name, last + delta);
    }

    /// Closes every span still open, in reverse open order.
    pub fn close_all(&mut self) {
        let now = self.now();
        while let Some(idx) = self.open.pop() {
            self.spans[idx].end = now;
        }
    }

    /// All spans in open order (parents before children).
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// The record behind a span handle (open or closed). `None` only for
    /// handles from another recorder with more spans.
    pub fn record_of(&self, span: SpanId) -> Option<&SpanRecord> {
        self.spans.get(span.0)
    }

    /// All instantaneous events in emission order.
    pub fn events(&self) -> &[EventRecord] {
        &self.events
    }

    /// Counter series, sorted by name.
    pub fn counters(&self) -> &BTreeMap<String, Vec<CounterSample>> {
        &self.counters
    }

    /// Absorbs `other`, re-homing its tracks after this recorder's so the
    /// two span forests never interleave. Use for per-thread recorders
    /// joined back into the pipeline's main one.
    ///
    /// If `other` carries a [`TraceContext`] whose `parent_span` names a
    /// span of *this* recorder, `other`'s root spans are adopted as
    /// children of that span, so child-stage recorders fold back into one
    /// request tree.
    pub fn merge(&mut self, other: Recorder) {
        let mut other = other;
        other.close_all();
        let base_span = self.spans.len();
        let adopt = other
            .trace
            .and_then(|t| t.parent_span)
            .map(|p| p as usize)
            .filter(|p| *p < base_span);
        let shift = self.next_track;
        let mut max_track = 0;
        for mut s in other.spans {
            s.track += shift;
            max_track = max_track.max(s.track);
            s.parent = match s.parent {
                Some(p) => Some(p + base_span),
                None => adopt,
            };
            self.spans.push(s);
        }
        for mut e in other.events {
            e.track += shift;
            max_track = max_track.max(e.track);
            self.events.push(e);
        }
        for (name, samples) in other.counters {
            self.counters.entry(name).or_default().extend(samples);
        }
        self.next_track = self.next_track.max(max_track + 1);
    }

    /// Deterministic [`Value`] tree: spans in open order, counters sorted
    /// by name, fixed key order inside every object.
    pub fn to_value(&self) -> Value {
        let spans = self
            .spans
            .iter()
            .map(|s| {
                let mut m = vec![
                    ("name".to_string(), Value::Str(s.name.clone())),
                    ("cat".to_string(), Value::Str(s.cat.clone())),
                    ("track".to_string(), Value::U64(u64::from(s.track))),
                    ("start".to_string(), Value::U64(s.start)),
                    ("end".to_string(), Value::U64(s.end)),
                    ("depth".to_string(), Value::U64(s.depth as u64)),
                ];
                if !s.args.is_empty() {
                    m.push((
                        "args".to_string(),
                        Value::Map(
                            s.args
                                .iter()
                                .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                                .collect(),
                        ),
                    ));
                }
                Value::Map(m)
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(name, samples)| {
                let seq = samples
                    .iter()
                    .map(|s| {
                        Value::Map(vec![
                            ("ts".to_string(), Value::U64(s.ts)),
                            ("value".to_string(), Value::F64(s.value)),
                        ])
                    })
                    .collect();
                (name.clone(), Value::Seq(seq))
            })
            .collect();
        let events = self
            .events
            .iter()
            .map(|e| {
                Value::Map(vec![
                    ("name".to_string(), Value::Str(e.name.clone())),
                    ("track".to_string(), Value::U64(u64::from(e.track))),
                    ("ts".to_string(), Value::U64(e.ts)),
                ])
            })
            .collect();
        let mut top = Vec::new();
        if let Some(t) = self.trace {
            top.push(("trace_id".to_string(), Value::U64(t.trace_id)));
        }
        top.push(("spans".to_string(), Value::Seq(spans)));
        top.push(("counters".to_string(), Value::Map(counters)));
        top.push(("events".to_string(), Value::Seq(events)));
        Value::Map(top)
    }

    /// Compact deterministic JSON dump of [`Recorder::to_value`].
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("value serialises")
    }

    /// Human-readable summary table ([`fmt::Display`]).
    pub fn summary(&self) -> Summary<'_> {
        Summary { rec: self }
    }
}

/// Display adapter over a [`Recorder`]: indented span table plus final
/// counter values.
#[derive(Debug, Clone, Copy)]
pub struct Summary<'a> {
    rec: &'a Recorder,
}

impl fmt::Display for Summary<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total: u64 = self
            .rec
            .spans
            .iter()
            .filter(|s| s.depth == 0)
            .map(SpanRecord::duration)
            .sum();
        writeln!(f, "{:<44} {:>12} {:>7}", "span", "ticks", "share")?;
        for s in &self.rec.spans {
            let label = format!("{}{}", "  ".repeat(s.depth), s.name);
            let share = if total == 0 {
                0.0
            } else {
                100.0 * s.duration() as f64 / total as f64
            };
            writeln!(f, "{:<44} {:>12} {:>6.1}%", label, s.duration(), share)?;
        }
        if !self.rec.counters.is_empty() {
            writeln!(f, "{:<44} {:>12}", "counter", "last")?;
            for (name, samples) in &self.rec.counters {
                let last = samples.last().map(|s| s.value).unwrap_or(0.0);
                writeln!(f, "{name:<44} {last:>12.3}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_spans_are_deterministic() {
        let mut r = Recorder::manual();
        let a = r.start("outer");
        r.set_time(5);
        let b = r.start("inner");
        r.set_time(9);
        r.end(b);
        r.set_time(10);
        r.end(a);
        let spans = r.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].duration(), 10);
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[1].duration(), 4);
    }

    #[test]
    fn out_of_order_end_closes_children() {
        let mut r = Recorder::manual();
        let a = r.start("outer");
        let _b = r.start("leaked");
        r.set_time(3);
        r.end(a);
        assert!(r.spans().iter().all(|s| s.end == 3));
        // The open stack is empty again: a new span is top-level.
        let c = r.start("next");
        assert_eq!(r.spans()[c.0].depth, 0);
    }

    #[test]
    fn counter_add_accumulates() {
        let mut r = Recorder::manual();
        r.counter_add("energy_uj", 1.5);
        r.set_time(2);
        r.counter_add("energy_uj", 2.0);
        let series = &r.counters()["energy_uj"];
        assert_eq!(series.len(), 2);
        assert_eq!(series[1].value, 3.5);
    }

    #[test]
    fn merge_rehomes_tracks_and_parents() {
        let mut main = Recorder::manual();
        let m = main.start("main");
        main.set_time(4);
        main.end(m);

        let mut worker = Recorder::manual();
        let w = worker.start("worker");
        worker.set_time(2);
        let inner = worker.start("inner");
        worker.set_time(3);
        worker.end(inner);
        worker.end(w);

        main.merge(worker);
        let spans = main.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].track, 0);
        assert_eq!(spans[1].track, 1);
        assert_eq!(spans[2].track, 1);
        assert_eq!(spans[2].parent, Some(1));
    }

    #[test]
    fn merge_adopts_roots_under_the_trace_parent_span() {
        let mut main = Recorder::manual();
        let root = main.start("request");
        main.set_time(2);
        let predict = main.start("predict");

        let mut stage =
            Recorder::manual().with_trace(crate::TraceContext::root(9).child_of(predict));
        let inner = stage.start("project");
        stage.set_time(1);
        stage.end(inner);

        main.merge(stage);
        main.set_time(5);
        main.end(predict);
        main.end(root);
        let spans = main.spans();
        // The child stage's root span hangs off `predict`, not top level.
        assert_eq!(spans[2].name, "project");
        assert_eq!(spans[2].parent, Some(1));
        // Local nesting inside the merged recorder is still shifted as before.
        assert_eq!(spans[1].parent, Some(0));
    }

    #[test]
    fn trace_context_round_trips_and_shows_in_the_dump() {
        let ctx = crate::TraceContext::root(42);
        let mut r = Recorder::manual().with_trace(ctx);
        assert_eq!(r.trace(), Some(ctx));
        let s = r.start("request");
        r.set_time(3);
        r.end(s);
        assert!(r.to_json().contains("\"trace_id\":42"), "{}", r.to_json());
        // Untraced recorders keep the historical dump shape.
        assert!(!Recorder::manual().to_json().contains("trace_id"));
    }

    #[test]
    fn json_dump_is_stable() {
        let mut r = Recorder::manual();
        r.counter("zeta", 1.0);
        r.counter("alpha", 2.0);
        let s = r.start("stage");
        r.set_time(7);
        r.end(s);
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b);
        // Counters are key-sorted in the dump.
        assert!(a.find("alpha").unwrap() < a.find("zeta").unwrap());
    }

    #[test]
    fn summary_lists_spans_and_counters() {
        let mut r = Recorder::manual();
        let s = r.start("simulate");
        r.set_time(10);
        r.end(s);
        r.counter("kernels", 3.0);
        let text = r.summary().to_string();
        assert!(text.contains("simulate"));
        assert!(text.contains("kernels"));
        assert!(text.contains("100.0%"));
    }
}

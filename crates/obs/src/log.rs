//! Structured logging: one line per record, plain text or JSON-lines.
//!
//! The bench binaries historically wrote ad-hoc `eprintln!("[cache] ...")`
//! lines. [`Logger`] keeps that text shape byte-for-byte (`[stage] message
//! k=v`) so existing greps — including the CI warm-cache check — keep
//! working, while `--log-json` switches every record to a single JSON
//! object per line (`level`, `ts`, `stage`, `msg`, plus flattened kv
//! fields) that a log pipeline can ingest without regexes.
//!
//! # Examples
//!
//! ```
//! use pulp_obs::log::{LogFormat, Logger};
//!
//! let log = Logger::to_sink(LogFormat::Json);
//! log.info("cache", "warm", &[("hits", "472".into())]);
//! let line = log.take_sink().unwrap().remove(0);
//! assert!(line.starts_with("{\"level\":\"info\""));
//! assert!(line.contains("\"stage\":\"cache\""));
//! assert!(line.contains("\"hits\":\"472\""));
//! ```

use serde::Value;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Output shape of a [`Logger`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogFormat {
    /// `[stage] message k=v ...` — the historical stderr format.
    #[default]
    Text,
    /// One JSON object per line: `{"level","ts","stage","msg",...kv}`.
    Json,
}

/// Record severity. Only used as a field today (no filtering): the bench
/// binaries log sparsely enough that suppression happens at the call site
/// via `--quiet`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogLevel {
    /// Routine progress.
    Info,
    /// Something degraded but the run continues.
    Warn,
}

impl LogLevel {
    fn as_str(self) -> &'static str {
        match self {
            LogLevel::Info => "info",
            LogLevel::Warn => "warn",
        }
    }
}

/// A minimal structured logger writing to stderr (or an in-memory sink in
/// tests). Cheap to construct, `Sync` via an internal mutex on the sink.
#[derive(Debug)]
pub struct Logger {
    format: LogFormat,
    /// When set, lines are captured here instead of stderr.
    sink: Option<Mutex<Vec<String>>>,
    /// When false, `ts` is omitted from JSON records — used by tests that
    /// assert byte-identical output across runs.
    timestamps: bool,
}

impl Logger {
    /// A stderr logger in the given format, with timestamps on JSON
    /// records.
    pub fn new(format: LogFormat) -> Self {
        Self {
            format,
            sink: None,
            timestamps: true,
        }
    }

    /// A logger that captures lines in memory (for tests) and omits
    /// timestamps so output is deterministic.
    pub fn to_sink(format: LogFormat) -> Self {
        Self {
            format,
            sink: Some(Mutex::new(Vec::new())),
            timestamps: false,
        }
    }

    /// Consumes the in-memory sink, returning captured lines. `None` for
    /// stderr loggers.
    pub fn take_sink(self) -> Option<Vec<String>> {
        self.sink.map(|m| m.into_inner().unwrap_or_default())
    }

    /// Snapshots the in-memory sink without consuming the logger (for
    /// callers that share the logger behind an `Arc`). `None` for stderr
    /// loggers.
    pub fn sink_lines(&self) -> Option<Vec<String>> {
        self.sink
            .as_ref()
            .map(|m| m.lock().map(|g| g.clone()).unwrap_or_default())
    }

    /// Logs at [`LogLevel::Info`].
    pub fn info(&self, stage: &str, msg: &str, fields: &[(&str, String)]) {
        self.log(LogLevel::Info, stage, msg, fields);
    }

    /// Logs at [`LogLevel::Warn`].
    pub fn warn(&self, stage: &str, msg: &str, fields: &[(&str, String)]) {
        self.log(LogLevel::Warn, stage, msg, fields);
    }

    /// Emits one record.
    pub fn log(&self, level: LogLevel, stage: &str, msg: &str, fields: &[(&str, String)]) {
        let line = self.render(level, stage, msg, fields);
        match &self.sink {
            Some(sink) => {
                if let Ok(mut lines) = sink.lock() {
                    lines.push(line);
                }
            }
            None => eprintln!("{line}"),
        }
    }

    fn render(&self, level: LogLevel, stage: &str, msg: &str, fields: &[(&str, String)]) -> String {
        match self.format {
            LogFormat::Text => {
                let mut line = format!("[{stage}] {msg}");
                for (k, v) in fields {
                    line.push(' ');
                    line.push_str(k);
                    line.push('=');
                    line.push_str(v);
                }
                line
            }
            LogFormat::Json => {
                // Field order is fixed (level, ts, stage, msg, then kv in
                // call order) so identical calls render identically.
                let mut map: Vec<(String, Value)> = Vec::with_capacity(4 + fields.len());
                map.push(("level".into(), Value::Str(level.as_str().into())));
                if self.timestamps {
                    let ms = SystemTime::now()
                        .duration_since(UNIX_EPOCH)
                        .map(|d| d.as_millis() as u64)
                        .unwrap_or(0);
                    map.push(("ts".into(), Value::U64(ms)));
                }
                map.push(("stage".into(), Value::Str(stage.into())));
                map.push(("msg".into(), Value::Str(msg.into())));
                for (k, v) in fields {
                    map.push(((*k).into(), Value::Str(v.clone())));
                }
                serde_json::to_string(&Value::Map(map)).unwrap_or_else(|_| "{}".into())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(log: Logger) -> Vec<String> {
        log.take_sink().expect("sink logger")
    }

    #[test]
    fn text_format_matches_the_historical_shape() {
        let log = Logger::to_sink(LogFormat::Text);
        log.info(
            "cache",
            "472 hits, 0 misses, 0 invalidations (100.0% hit rate)",
            &[],
        );
        assert_eq!(
            lines(log),
            vec!["[cache] 472 hits, 0 misses, 0 invalidations (100.0% hit rate)"]
        );
    }

    #[test]
    fn text_format_appends_kv_pairs() {
        let log = Logger::to_sink(LogFormat::Text);
        log.warn("dataset", "slow build", &[("samples", "59".into())]);
        assert_eq!(lines(log), vec!["[dataset] slow build samples=59"]);
    }

    #[test]
    fn json_records_are_single_escaped_lines() {
        let log = Logger::to_sink(LogFormat::Json);
        log.info("stage \"x\"", "line\nbreak", &[("k", "v".into())]);
        let out = lines(log);
        assert_eq!(out.len(), 1);
        let v: Value = serde_json::from_str(&out[0]).expect("valid JSON");
        let text = |name: &str| v.field(name).and_then(Value::as_str).expect(name);
        assert_eq!(text("level"), "info");
        assert_eq!(text("stage"), "stage \"x\"");
        assert_eq!(text("msg"), "line\nbreak");
        assert_eq!(text("k"), "v");
        assert!(!out[0].contains('\n'));
    }

    #[test]
    fn sinkless_loggers_report_no_lines() {
        assert!(Logger::new(LogFormat::Text).take_sink().is_none());
    }
}

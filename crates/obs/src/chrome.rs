//! Chrome trace-event (Perfetto-loadable) export.
//!
//! Emits the JSON object form of the [trace event format]: a top-level
//! `traceEvents` array of complete (`ph: "X"`), counter (`ph: "C"`),
//! instant (`ph: "i"`) and metadata (`ph: "M"`) events. Load the output in
//! `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! [trace event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::recorder::Recorder;
use serde::Value;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Map(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Renders `rec` as a Chrome trace-event JSON string.
///
/// Deterministic: events appear as metadata first, then spans in open
/// order, then instants, then counter samples sorted by name. `pid` is
/// always 0; `tid` is the recorder track. Timestamps are the recorder's
/// ticks interpreted as microseconds.
pub fn chrome_trace(rec: &Recorder, process_name: &str) -> String {
    serde_json::to_string(&chrome_trace_value(rec, process_name)).expect("value serialises")
}

/// [`chrome_trace`] as a [`Value`] tree (for tests and post-processing).
pub fn chrome_trace_value(rec: &Recorder, process_name: &str) -> Value {
    let mut events: Vec<Value> = Vec::new();
    events.push(obj(vec![
        ("name", Value::Str("process_name".into())),
        ("ph", Value::Str("M".into())),
        ("pid", Value::U64(0)),
        ("tid", Value::U64(0)),
        ("args", obj(vec![("name", Value::Str(process_name.into()))])),
    ]));
    let mut tracks: Vec<u32> = rec.spans().iter().map(|s| s.track).collect();
    tracks.extend(rec.events().iter().map(|e| e.track));
    tracks.sort_unstable();
    tracks.dedup();
    for track in &tracks {
        events.push(obj(vec![
            ("name", Value::Str("thread_name".into())),
            ("ph", Value::Str("M".into())),
            ("pid", Value::U64(0)),
            ("tid", Value::U64(u64::from(*track))),
            (
                "args",
                obj(vec![("name", Value::Str(format!("track{track}")))]),
            ),
        ]));
    }
    for s in rec.spans() {
        let mut fields = vec![
            ("name", Value::Str(s.name.clone())),
            (
                "cat",
                Value::Str(if s.cat.is_empty() {
                    "span".into()
                } else {
                    s.cat.clone()
                }),
            ),
            ("ph", Value::Str("X".into())),
            ("ts", Value::U64(s.start)),
            ("dur", Value::U64(s.duration())),
            ("pid", Value::U64(0)),
            ("tid", Value::U64(u64::from(s.track))),
        ];
        if !s.args.is_empty() {
            fields.push((
                "args",
                Value::Map(
                    s.args
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                        .collect(),
                ),
            ));
        }
        events.push(obj(fields));
    }
    for e in rec.events() {
        events.push(obj(vec![
            ("name", Value::Str(e.name.clone())),
            ("ph", Value::Str("i".into())),
            ("ts", Value::U64(e.ts)),
            ("pid", Value::U64(0)),
            ("tid", Value::U64(u64::from(e.track))),
            ("s", Value::Str("t".into())),
        ]));
    }
    for (name, samples) in rec.counters() {
        for sample in samples {
            events.push(obj(vec![
                ("name", Value::Str(name.clone())),
                ("ph", Value::Str("C".into())),
                ("ts", Value::U64(sample.ts)),
                ("pid", Value::U64(0)),
                ("args", obj(vec![("value", Value::F64(sample.value))])),
            ]));
        }
    }
    Value::Map(vec![
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
        ("traceEvents".to_string(), Value::Seq(events)),
    ])
}

/// Structural check for an exported trace: parses the JSON, then verifies
/// per-`tid` that complete events have monotonically non-decreasing start
/// timestamps and properly nest (each span is either disjoint from or fully
/// contained in the one enclosing it).
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate_chrome_trace(json: &str) -> Result<(), String> {
    let v: Value = serde_json::from_str(json).map_err(|e| e.to_string())?;
    let events = v
        .field("traceEvents")
        .and_then(|e| e.as_seq())
        .map_err(|e| e.to_string())?;
    // (tid, ts, end, name) of complete events, in file order.
    let mut by_tid: std::collections::BTreeMap<u64, Vec<(u64, u64, String)>> =
        std::collections::BTreeMap::new();
    for ev in events {
        let ph = ev
            .field("ph")
            .and_then(|p| p.as_str())
            .map_err(|e| e.to_string())?;
        if ph != "X" {
            continue;
        }
        let ts = ev
            .field("ts")
            .and_then(|t| t.as_u64())
            .map_err(|e| e.to_string())?;
        let dur = ev
            .field("dur")
            .and_then(|d| d.as_u64())
            .map_err(|e| e.to_string())?;
        let tid = ev
            .field("tid")
            .and_then(|t| t.as_u64())
            .map_err(|e| e.to_string())?;
        let name = ev
            .field("name")
            .and_then(|n| n.as_str())
            .map_err(|e| e.to_string())?;
        by_tid
            .entry(tid)
            .or_default()
            .push((ts, ts + dur, name.to_string()));
    }
    for (tid, spans) in &by_tid {
        let mut stack: Vec<(u64, u64, &str)> = Vec::new();
        let mut last_ts = 0u64;
        for (ts, end, name) in spans {
            if *ts < last_ts {
                return Err(format!(
                    "tid {tid}: span `{name}` starts at {ts} before previous start {last_ts}"
                ));
            }
            last_ts = *ts;
            while let Some((_, open_end, _)) = stack.last() {
                if *ts >= *open_end {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some((open_ts, open_end, open_name)) = stack.last() {
                if *end > *open_end {
                    return Err(format!(
                        "tid {tid}: span `{name}` [{ts}, {end}) escapes enclosing \
                         `{open_name}` [{open_ts}, {open_end})"
                    ));
                }
            }
            stack.push((*ts, *end, name));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_round_trips_and_nests() {
        let mut r = Recorder::manual();
        let a = r.start_cat("pipeline", "stage");
        r.set_time(2);
        let b = r.start("simulate");
        r.set_time(8);
        r.end(b);
        r.set_time(10);
        r.end(a);
        r.counter("progress", 1.0);
        r.event("checkpoint");
        let json = chrome_trace(&r, "pulp");
        let v: Value = serde_json::from_str(&json).expect("valid JSON");
        let events = v.field("traceEvents").unwrap().as_seq().unwrap();
        assert!(events.len() >= 5);
        validate_chrome_trace(&json).expect("well nested");
    }

    #[test]
    fn validator_rejects_escaping_span() {
        let bad = r#"{"traceEvents":[
            {"name":"outer","ph":"X","ts":0,"dur":5,"pid":0,"tid":0},
            {"name":"inner","ph":"X","ts":3,"dur":10,"pid":0,"tid":0}
        ]}"#;
        let err = validate_chrome_trace(bad).unwrap_err();
        assert!(err.contains("escapes"), "unexpected error: {err}");
    }

    #[test]
    fn validator_rejects_backwards_time() {
        let bad = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":9,"dur":1,"pid":0,"tid":0},
            {"name":"b","ph":"X","ts":3,"dur":1,"pid":0,"tid":0}
        ]}"#;
        assert!(validate_chrome_trace(bad).is_err());
    }

    #[test]
    fn merged_tracks_get_distinct_tids() {
        let mut main = Recorder::manual();
        let m = main.start("main");
        main.set_time(10);
        main.end(m);
        let mut w = Recorder::manual();
        let s = w.start("worker");
        w.set_time(4);
        w.end(s);
        main.merge(w);
        let json = chrome_trace(&main, "pulp");
        validate_chrome_trace(&json).expect("valid");
        assert!(json.contains("\"tid\":1"));
    }
}

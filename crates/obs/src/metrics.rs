//! Prometheus-style metrics: counters, gauges and fixed-bucket log-scale
//! histograms with deterministic text-format exposition.
//!
//! [`MetricsRegistry`] is the *online* counterpart of the offline
//! [`Recorder`](crate::Recorder): where the recorder keeps every span for
//! post-hoc trace inspection, the registry keeps only aggregates — a
//! monotonic [`counter`](MetricsRegistry::counter_add), a last-write-wins
//! [`gauge`](MetricsRegistry::gauge_set) and a fixed-bucket
//! [`histogram`](MetricsRegistry::histogram_observe) from which p50/p90/p99
//! are derivable — sized for a service answering configuration queries
//! rather than a bench run writing a trace file.
//!
//! Design constraints, in order:
//!
//! 1. **Dependency-free.** Plain `std`, like the rest of the workspace.
//! 2. **Deterministic exposition.** [`MetricsRegistry::render`] emits
//!    families sorted by name and series sorted by label set, so two
//!    registries fed the same observations produce byte-identical output
//!    (the property every golden test in this repo leans on).
//! 3. **Valid Prometheus text format.** `# HELP`/`# TYPE` headers, label
//!    escaping, cumulative monotone histogram buckets with `+Inf`, `_sum`
//!    and `_count`. [`validate_exposition`] checks those invariants
//!    structurally, mirroring
//!    [`validate_chrome_trace`](crate::validate_chrome_trace).
//!
//! # Examples
//!
//! ```
//! use pulp_obs::metrics::{MetricsRegistry, validate_exposition};
//!
//! let mut reg = MetricsRegistry::new();
//! reg.counter_add("requests_total", "Requests served.", &[("endpoint", "/predict")], 1.0);
//! reg.histogram_observe("latency_seconds", "Request latency.", &[], 0.003);
//! let text = reg.render();
//! validate_exposition(&text).unwrap();
//! assert!(text.contains("requests_total{endpoint=\"/predict\"} 1"));
//! ```

use crate::recorder::Recorder;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A sorted, owned label set (the identity of one series in a family).
pub type LabelSet = Vec<(String, String)>;

fn label_set(labels: &[(&str, &str)]) -> LabelSet {
    let mut set: LabelSet = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    set.sort();
    set
}

/// Default histogram buckets: log-scale, 5 per decade across 1e-6..=1e3
/// (covers microseconds to ~17 minutes when observations are seconds, and
/// equally serves cycle counts scaled down by 1e6). 46 buckets total.
pub fn default_buckets() -> Vec<f64> {
    log_buckets(1e-6, 1e3, 5)
}

/// Log-spaced bucket upper bounds: `per_decade` buckets per factor of ten
/// from `min` to `max` inclusive. The `+Inf` bucket is implicit — every
/// histogram gets it automatically.
///
/// # Panics
///
/// Panics if `min`/`max` are non-positive or out of order, or if
/// `per_decade` is zero — bucket layouts are compile-time decisions and a
/// bad one is a programming error.
pub fn log_buckets(min: f64, max: f64, per_decade: usize) -> Vec<f64> {
    assert!(
        min > 0.0 && max > min && per_decade > 0,
        "invalid bucket spec: min {min}, max {max}, per_decade {per_decade}"
    );
    let step = 10f64.powf(1.0 / per_decade as f64);
    let mut bounds = Vec::new();
    let mut b = min;
    // Multiplicative stepping accumulates error; regenerate from the
    // exponent each time so bucket bounds are reproducible.
    let mut i = 0u32;
    while b <= max * (1.0 + 1e-12) {
        bounds.push(b);
        i += 1;
        b = min * step.powi(i as i32);
    }
    bounds
}

#[derive(Debug, Clone)]
struct HistogramData {
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts, same length as `bounds` plus one
    /// trailing slot for `+Inf`.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl HistogramData {
    fn new(bounds: Vec<f64>) -> Self {
        let n = bounds.len();
        Self {
            bounds,
            counts: vec![0; n + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }

    fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.sum = 0.0;
        self.count = 0;
    }

    fn merge_from(&mut self, other: &HistogramData) {
        debug_assert_eq!(self.bounds, other.bounds, "windowed slots share bounds");
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// The `q`-quantile (0..=1) estimated from the bucket layout: the upper
    /// bound of the bucket holding the target rank (`+Inf` degrades to the
    /// last finite bound). `None` while empty.
    fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return Some(if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.bounds.last().copied().unwrap_or(f64::INFINITY)
                });
            }
        }
        None
    }
}

/// Layout of a sliding-window series: total window length, the number of
/// ring slots it is divided into, and (for histograms) the bucket bounds.
///
/// The window is a ring of `slots` sub-aggregates, each covering
/// `window_secs / slots` seconds. Observations rotate the slot they land in
/// (resetting it when its epoch is stale); reads merge only the slots whose
/// epoch falls inside the window anchored at the most recent observation —
/// time comes from the caller, so behaviour is fully deterministic and the
/// "last W seconds" view never depends on a hidden wall clock.
#[derive(Debug, Clone)]
pub struct WindowConfig {
    /// Window length in seconds.
    pub window_secs: u64,
    /// Ring slots the window is divided into (resolution of expiry).
    pub slots: usize,
    /// Histogram bucket upper bounds (ignored by windowed gauges).
    pub buckets: Vec<f64>,
}

impl Default for WindowConfig {
    /// One minute over six 10-second slots, [`default_buckets`] layout.
    fn default() -> Self {
        Self {
            window_secs: 60,
            slots: 6,
            buckets: default_buckets(),
        }
    }
}

/// One ring slot of a windowed series: the slot epoch (absolute slot index
/// since time zero) plus the sub-aggregate for that slot.
#[derive(Debug, Clone)]
struct WindowSlot<T> {
    epoch: u64,
    data: T,
}

#[derive(Debug, Clone)]
struct WindowedHistogram {
    slot_secs: u64,
    slots: Vec<WindowSlot<HistogramData>>,
}

impl WindowedHistogram {
    fn new(cfg: &WindowConfig) -> Self {
        let n = cfg.slots.max(1);
        let slot_secs = (cfg.window_secs / n as u64).max(1);
        Self {
            slot_secs,
            slots: (0..n)
                .map(|_| WindowSlot {
                    epoch: 0,
                    data: HistogramData::new(cfg.buckets.clone()),
                })
                .collect(),
        }
    }

    fn observe(&mut self, value: f64, now_s: u64) {
        let epoch = now_s / self.slot_secs;
        let n = self.slots.len() as u64;
        let slot = &mut self.slots[(epoch % n) as usize];
        if epoch < slot.epoch {
            return; // time went backwards; drop rather than pollute a slot
        }
        if epoch > slot.epoch {
            slot.data.reset();
            slot.epoch = epoch;
        }
        slot.data.observe(value);
    }

    /// All live slots merged: those within the window anchored at the most
    /// recent observed epoch.
    fn merged(&self) -> HistogramData {
        let n = self.slots.len() as u64;
        let anchor = self.slots.iter().map(|s| s.epoch).max().unwrap_or(0);
        let mut out = HistogramData::new(self.slots[0].data.bounds.clone());
        for slot in &self.slots {
            if slot.epoch + n > anchor {
                out.merge_from(&slot.data);
            }
        }
        out
    }
}

#[derive(Debug, Clone)]
struct WindowedGauge {
    slot_secs: u64,
    slots: Vec<WindowSlot<Option<f64>>>,
}

impl WindowedGauge {
    fn new(cfg: &WindowConfig) -> Self {
        let n = cfg.slots.max(1);
        let slot_secs = (cfg.window_secs / n as u64).max(1);
        Self {
            slot_secs,
            slots: (0..n)
                .map(|_| WindowSlot {
                    epoch: 0,
                    data: None,
                })
                .collect(),
        }
    }

    fn observe(&mut self, value: f64, now_s: u64) {
        if !value.is_finite() {
            return;
        }
        let epoch = now_s / self.slot_secs;
        let n = self.slots.len() as u64;
        let slot = &mut self.slots[(epoch % n) as usize];
        if epoch < slot.epoch {
            return;
        }
        if epoch > slot.epoch {
            slot.data = None;
            slot.epoch = epoch;
        }
        slot.data = Some(match slot.data {
            Some(prev) => prev.max(value),
            None => value,
        });
    }

    /// Peak over the live slots, `None` before the first observation.
    fn peak(&self) -> Option<f64> {
        let n = self.slots.len() as u64;
        let anchor = self.slots.iter().map(|s| s.epoch).max().unwrap_or(0);
        self.slots
            .iter()
            .filter(|s| s.epoch + n > anchor)
            .filter_map(|s| s.data)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }
}

/// Quantiles a windowed histogram exposes, as (label value, q) pairs.
const WINDOW_QUANTILES: [(&str, f64); 3] = [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)];

#[derive(Debug, Clone)]
enum MetricData {
    Counter(f64),
    Gauge(f64),
    Histogram(HistogramData),
    WindowedHistogram(WindowedHistogram),
    WindowedGauge(WindowedGauge),
}

#[derive(Debug, Clone)]
struct Family {
    help: String,
    kind: &'static str,
    series: BTreeMap<LabelSet, MetricData>,
}

/// A registry of metric families, addressed by name + label set.
///
/// Unlike typical Prometheus client libraries there is no global state and
/// no handles: every operation names its family and labels directly, and
/// the registry is plain data (`Clone`), so ownership follows the same
/// pass-it-down discipline as [`Recorder`].
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    families: BTreeMap<String, Family>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn family(&mut self, name: &str, help: &str, kind: &'static str) -> &mut Family {
        assert!(
            valid_metric_name(name),
            "invalid metric name `{name}` (want [a-zA-Z_:][a-zA-Z0-9_:]*)"
        );
        let f = self.families.entry(name.to_string()).or_insert(Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert_eq!(
            f.kind, kind,
            "metric `{name}` registered as {} but used as {kind}",
            f.kind
        );
        f
    }

    /// Adds `delta` (must be non-negative — counters are monotonic) to the
    /// counter `name{labels}`, creating it at zero on first use.
    ///
    /// # Panics
    ///
    /// Panics on a negative delta or a name already registered with a
    /// different type.
    pub fn counter_add(&mut self, name: &str, help: &str, labels: &[(&str, &str)], delta: f64) {
        assert!(
            delta >= 0.0,
            "counter `{name}` cannot decrease (delta {delta})"
        );
        let set = label_set(labels);
        match self
            .family(name, help, "counter")
            .series
            .entry(set)
            .or_insert(MetricData::Counter(0.0))
        {
            MetricData::Counter(v) => *v += delta,
            _ => unreachable!("family() enforces the kind"),
        }
    }

    /// Sets the gauge `name{labels}` to `value` (last write wins).
    pub fn gauge_set(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        let set = label_set(labels);
        match self
            .family(name, help, "gauge")
            .series
            .entry(set)
            .or_insert(MetricData::Gauge(0.0))
        {
            MetricData::Gauge(v) => *v = value,
            _ => unreachable!("family() enforces the kind"),
        }
    }

    /// Records `value` into the histogram `name{labels}` using the
    /// [`default_buckets`] layout. Non-finite values are dropped.
    pub fn histogram_observe(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        self.histogram_observe_with(name, help, labels, value, default_buckets);
    }

    /// [`histogram_observe`](Self::histogram_observe) with an explicit
    /// bucket layout, applied only when the series is first created (a
    /// histogram's buckets are fixed for its lifetime).
    pub fn histogram_observe_with(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        value: f64,
        buckets: impl FnOnce() -> Vec<f64>,
    ) {
        let set = label_set(labels);
        match self
            .family(name, help, "histogram")
            .series
            .entry(set)
            .or_insert_with(|| MetricData::Histogram(HistogramData::new(buckets())))
        {
            MetricData::Histogram(h) => h.observe(value),
            _ => unreachable!("family() enforces the kind"),
        }
    }

    /// Records `value` into the sliding-window histogram `name{labels}` at
    /// caller time `now_s` (seconds; e.g. seconds since service start),
    /// using the [`WindowConfig::default`] layout. The series renders as a
    /// `gauge` family of p50/p90/p99 samples labelled `quantile`, computed
    /// over the window anchored at the most recent observation.
    pub fn windowed_observe(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        value: f64,
        now_s: u64,
    ) {
        self.windowed_observe_with(name, help, labels, value, now_s, WindowConfig::default);
    }

    /// [`windowed_observe`](Self::windowed_observe) with an explicit window
    /// layout, applied only when the series is first created.
    pub fn windowed_observe_with(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        value: f64,
        now_s: u64,
        config: impl FnOnce() -> WindowConfig,
    ) {
        let set = label_set(labels);
        match self
            .family(name, help, "window_histogram")
            .series
            .entry(set)
            .or_insert_with(|| MetricData::WindowedHistogram(WindowedHistogram::new(&config())))
        {
            MetricData::WindowedHistogram(w) => w.observe(value, now_s),
            _ => unreachable!("family() enforces the kind"),
        }
    }

    /// Records `value` into the sliding-window peak gauge `name{labels}` at
    /// caller time `now_s`. The rendered sample is the maximum observed
    /// value over the window anchored at the most recent observation —
    /// a "worst level recently" companion to a last-write-wins gauge.
    pub fn windowed_gauge_set(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        value: f64,
        now_s: u64,
    ) {
        let set = label_set(labels);
        match self
            .family(name, help, "window_gauge")
            .series
            .entry(set)
            .or_insert_with(|| {
                MetricData::WindowedGauge(WindowedGauge::new(&WindowConfig::default()))
            }) {
            MetricData::WindowedGauge(w) => w.observe(value, now_s),
            _ => unreachable!("family() enforces the kind"),
        }
    }

    /// Windowed-histogram quantile over the live window, `None` for a
    /// missing series or an empty window.
    pub fn windowed_quantile(&self, name: &str, labels: &[(&str, &str)], q: f64) -> Option<f64> {
        match self.families.get(name)?.series.get(&label_set(labels))? {
            MetricData::WindowedHistogram(w) => w.merged().quantile(q),
            _ => None,
        }
    }

    /// Number of observations inside a windowed histogram's live window.
    pub fn windowed_count(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.families.get(name)?.series.get(&label_set(labels))? {
            MetricData::WindowedHistogram(w) => Some(w.merged().count),
            _ => None,
        }
    }

    /// Current value of a counter or gauge series, if it exists. Windowed
    /// gauges report their live-window peak.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.families.get(name)?.series.get(&label_set(labels))? {
            MetricData::Counter(v) | MetricData::Gauge(v) => Some(*v),
            MetricData::WindowedGauge(w) => w.peak(),
            MetricData::Histogram(_) | MetricData::WindowedHistogram(_) => None,
        }
    }

    /// Observation count of a histogram series, if it exists.
    pub fn histogram_count(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.families.get(name)?.series.get(&label_set(labels))? {
            MetricData::Histogram(h) => Some(h.count),
            _ => None,
        }
    }

    /// Bucket-resolution quantile (e.g. `0.5`, `0.9`, `0.99`) of a
    /// histogram series; `None` for missing or empty series.
    pub fn histogram_quantile(&self, name: &str, labels: &[(&str, &str)], q: f64) -> Option<f64> {
        match self.families.get(name)?.series.get(&label_set(labels))? {
            MetricData::Histogram(h) => h.quantile(q),
            _ => None,
        }
    }

    /// Number of metric families registered.
    pub fn len(&self) -> usize {
        self.families.len()
    }

    /// Returns `true` when no family has been registered.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// Folds a [`Recorder`]'s spans and counters into this registry:
    ///
    /// * every **closed** span becomes an observation of
    ///   `<prefix>_stage_ticks{stage=...}` where `stage` is the span's
    ///   category (its name for uncategorised spans) — sample-level span
    ///   names stay out of the label set to keep cardinality bounded;
    /// * every recorder counter's **last** value becomes the gauge
    ///   `<prefix>_counter{name=...}` (recorder counters are samples of a
    ///   level, so a gauge is the faithful mapping).
    ///
    /// This is the offline→online bridge: run an instrumented pipeline
    /// stage with a `Recorder`, then fold the result into the service's
    /// registry so `/metrics` shows per-stage latency histograms.
    pub fn observe_recorder(&mut self, prefix: &str, rec: &Recorder) {
        for span in rec.spans() {
            let stage = if span.cat.is_empty() {
                span.name.as_str()
            } else {
                span.cat.as_str()
            };
            let name = format!("{prefix}_stage_ticks");
            self.histogram_observe(
                &name,
                "Span durations folded from a Recorder, in clock ticks.",
                &[("stage", stage)],
                span.duration() as f64,
            );
        }
        for (cname, samples) in rec.counters() {
            if let Some(last) = samples.last() {
                let name = format!("{prefix}_counter");
                self.gauge_set(
                    &name,
                    "Final values of Recorder counters.",
                    &[("name", cname)],
                    last.value,
                );
            }
        }
    }

    /// Renders the registry in the Prometheus text exposition format,
    /// deterministically: families sorted by name, series sorted by label
    /// set, histogram buckets in ascending `le` order ending at `+Inf`.
    /// Windowed series render as `gauge` families: quantile samples (with a
    /// `quantile` label) for windowed histograms, the live-window peak for
    /// windowed gauges; empty windows render no samples.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, family) in &self.families {
            let exposed_kind = match family.kind {
                "window_histogram" | "window_gauge" => "gauge",
                k => k,
            };
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {name} {exposed_kind}");
            for (labels, data) in &family.series {
                match data {
                    MetricData::Counter(v) | MetricData::Gauge(v) => {
                        let _ = writeln!(out, "{name}{} {}", render_labels(labels), fmt_value(*v));
                    }
                    MetricData::WindowedHistogram(w) => {
                        let merged = w.merged();
                        for (label, q) in WINDOW_QUANTILES {
                            if let Some(v) = merged.quantile(q) {
                                let _ = writeln!(
                                    out,
                                    "{name}{} {}",
                                    render_labels_with(labels, "quantile", label),
                                    fmt_value(v)
                                );
                            }
                        }
                    }
                    MetricData::WindowedGauge(w) => {
                        if let Some(v) = w.peak() {
                            let _ =
                                writeln!(out, "{name}{} {}", render_labels(labels), fmt_value(v));
                        }
                    }
                    MetricData::Histogram(h) => {
                        let mut cumulative = 0u64;
                        for (i, &bound) in h.bounds.iter().enumerate() {
                            cumulative += h.counts[i];
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cumulative}",
                                render_labels_with(labels, "le", &fmt_value(bound))
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {}",
                            render_labels_with(labels, "le", "+Inf"),
                            h.count
                        );
                        let _ = writeln!(
                            out,
                            "{name}_sum{} {}",
                            render_labels(labels),
                            fmt_value(h.sum)
                        );
                        let _ = writeln!(out, "{name}_count{} {}", render_labels(labels), h.count);
                    }
                }
            }
        }
        out
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Escapes a label value per the exposition format: backslash, double
/// quote and newline.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes HELP text: backslash and newline (quotes are legal there).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &LabelSet) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

/// Labels plus one extra pair appended last (Prometheus convention puts
/// `le` after the user labels).
fn render_labels_with(labels: &LabelSet, key: &str, value: &str) -> String {
    let mut inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    inner.push(format!("{key}=\"{}\"", escape_label_value(value)));
    format!("{{{}}}", inner.join(","))
}

/// Formats a sample value: integers render without a fractional part
/// (Prometheus accepts both; bare integers keep counters greppable),
/// everything else uses Rust's shortest round-trip float formatting.
fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.is_finite() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

// ---------------------------------------------------------------------------
// Exposition validator
// ---------------------------------------------------------------------------

/// One parsed sample line of an exposition.
#[derive(Debug, Clone, PartialEq)]
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Structurally validates a Prometheus text exposition, mirroring
/// [`validate_chrome_trace`](crate::validate_chrome_trace):
///
/// * every sample line parses (name, escaped labels, float value);
/// * every sample belongs to a family announced by `# HELP` + `# TYPE`
///   lines appearing before it (histogram samples may use the `_bucket`,
///   `_sum`, `_count` suffixes);
/// * family names are announced at most once and appear in sorted order
///   (the determinism contract of [`MetricsRegistry::render`]);
/// * counter values are non-negative;
/// * per histogram series: `le` bounds strictly increase, cumulative
///   bucket counts are monotone non-decreasing, the `+Inf` bucket exists
///   and equals `_count`, and `_sum`/`_count` are present.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut helped: BTreeMap<String, bool> = BTreeMap::new();
    let mut last_family: Option<String> = None;
    // (family, series labels sans le) -> buckets/sum/count
    type SeriesKey = (String, Vec<(String, String)>);
    let mut hist_buckets: BTreeMap<SeriesKey, Vec<(f64, f64)>> = BTreeMap::new();
    let mut hist_sum: BTreeMap<SeriesKey, f64> = BTreeMap::new();
    let mut hist_count: BTreeMap<SeriesKey, f64> = BTreeMap::new();

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap_or("");
            if !valid_metric_name(name) {
                return Err(format!("line {n}: invalid family name `{name}` in HELP"));
            }
            if helped.insert(name.to_string(), true).is_some() {
                return Err(format!("line {n}: duplicate HELP for `{name}`"));
            }
            if let Some(prev) = &last_family {
                if name <= prev.as_str() {
                    return Err(format!(
                        "line {n}: family `{name}` out of order after `{prev}` \
                         (render() sorts families)"
                    ));
                }
            }
            last_family = Some(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {n}: unknown metric type `{kind}`"));
            }
            if !helped.contains_key(name) {
                return Err(format!(
                    "line {n}: TYPE for `{name}` without preceding HELP"
                ));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("line {n}: duplicate TYPE for `{name}`"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // free comment
        }
        let sample = parse_sample(line).map_err(|e| format!("line {n}: {e} (in `{line}`)"))?;
        // Resolve the family: exact name, or histogram suffixes.
        let (family, suffix) = match types.get(&sample.name) {
            Some(_) => (sample.name.clone(), ""),
            None => {
                let stripped = ["_bucket", "_sum", "_count"].iter().find_map(|suf| {
                    sample
                        .name
                        .strip_suffix(suf)
                        .filter(|base| types.get(*base).is_some_and(|t| t == "histogram"))
                        .map(|base| (base.to_string(), *suf))
                });
                match stripped {
                    Some(pair) => pair,
                    None => {
                        return Err(format!(
                            "line {n}: sample `{}` has no preceding # TYPE",
                            sample.name
                        ))
                    }
                }
            }
        };
        let kind = types[&family].clone();
        if kind == "counter" && sample.value < 0.0 {
            return Err(format!(
                "line {n}: counter `{family}` has negative value {}",
                sample.value
            ));
        }
        for (k, _) in &sample.labels {
            if !valid_label_name(k) {
                return Err(format!("line {n}: invalid label name `{k}`"));
            }
        }
        if kind == "histogram" {
            let mut labels = sample.labels.clone();
            let le = labels.iter().position(|(k, _)| k == "le");
            match suffix {
                "_bucket" => {
                    let Some(i) = le else {
                        return Err(format!("line {n}: `{family}_bucket` without `le` label"));
                    };
                    let (_, bound) = labels.remove(i);
                    let bound = if bound == "+Inf" {
                        f64::INFINITY
                    } else {
                        bound
                            .parse::<f64>()
                            .map_err(|_| format!("line {n}: bad le bound `{bound}`"))?
                    };
                    hist_buckets
                        .entry((family.clone(), labels))
                        .or_default()
                        .push((bound, sample.value));
                }
                "_sum" => {
                    hist_sum.insert((family.clone(), labels), sample.value);
                }
                "_count" => {
                    hist_count.insert((family.clone(), labels), sample.value);
                }
                _ => {
                    return Err(format!(
                        "line {n}: bare sample `{family}` for a histogram family"
                    ))
                }
            }
        }
    }

    for ((family, labels), buckets) in &hist_buckets {
        let series = format!("{family}{}", render_labels(labels));
        let mut prev_bound = f64::NEG_INFINITY;
        let mut prev_count = -1.0f64;
        for &(bound, count) in buckets {
            if bound <= prev_bound {
                return Err(format!(
                    "histogram {series}: le bounds not strictly increasing at {bound}"
                ));
            }
            if count < prev_count {
                return Err(format!(
                    "histogram {series}: cumulative bucket counts decrease at le={bound}"
                ));
            }
            prev_bound = bound;
            prev_count = count;
        }
        let Some(&(last_bound, last_count)) = buckets.last() else {
            continue;
        };
        if last_bound != f64::INFINITY {
            return Err(format!("histogram {series}: missing +Inf bucket"));
        }
        let Some(&count) = hist_count.get(&(family.clone(), labels.clone())) else {
            return Err(format!("histogram {series}: missing _count sample"));
        };
        if !hist_sum.contains_key(&(family.clone(), labels.clone())) {
            return Err(format!("histogram {series}: missing _sum sample"));
        }
        if (last_count - count).abs() > 1e-9 {
            return Err(format!(
                "histogram {series}: +Inf bucket {last_count} != _count {count}"
            ));
        }
    }
    Ok(())
}

/// Parses one sample line: `name{label="value",...} 1.5` or `name 1.5`.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_part, labels_text, value_text) = match line.find('{') {
        Some(brace) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| "unclosed label set".to_string())?;
            (
                &line[..brace],
                &line[brace + 1..close],
                line[close + 1..].trim(),
            )
        }
        None => {
            let sp = line.find(' ').ok_or_else(|| "missing value".to_string())?;
            (&line[..sp], "", line[sp..].trim())
        }
    };
    if !valid_metric_name(name_part) {
        return Err(format!("invalid metric name `{name_part}`"));
    }
    let labels = parse_labels(labels_text)?;
    let value: f64 = match value_text {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .parse()
            .map_err(|_| format!("invalid sample value `{v}`"))?,
    };
    Ok(Sample {
        name: name_part.to_string(),
        labels,
        value,
    })
}

/// Parses `k="v",k2="v2"` with escape handling; empty input is fine.
fn parse_labels(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = text.chars().peekable();
    loop {
        while chars.peek() == Some(&',') || chars.peek() == Some(&' ') {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(labels);
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if chars.next() != Some('"') {
            return Err(format!("label `{key}`: expected opening quote"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape `\\{other:?}`")),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err("unterminated label value".to_string()),
            }
        }
        labels.push((key, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("hits_total", "Hits.", &[], 1.0);
        reg.counter_add("hits_total", "Hits.", &[], 2.0);
        assert_eq!(reg.value("hits_total", &[]), Some(3.0));
        let text = reg.render();
        assert!(text.contains("# HELP hits_total Hits."));
        assert!(text.contains("# TYPE hits_total counter"));
        assert!(text.contains("hits_total 3"));
        validate_exposition(&text).expect("valid");
    }

    #[test]
    fn gauges_overwrite() {
        let mut reg = MetricsRegistry::new();
        reg.gauge_set("temp", "t.", &[("core", "0")], 5.0);
        reg.gauge_set("temp", "t.", &[("core", "0")], 2.5);
        assert_eq!(reg.value("temp", &[("core", "0")]), Some(2.5));
        assert!(reg.render().contains("temp{core=\"0\"} 2.5"));
    }

    #[test]
    #[should_panic(expected = "cannot decrease")]
    fn counters_reject_negative_deltas() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("x_total", "x.", &[], -1.0);
    }

    #[test]
    #[should_panic(expected = "registered as counter")]
    fn kind_conflicts_panic() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("x", "x.", &[], 1.0);
        reg.gauge_set("x", "x.", &[], 1.0);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_monotone() {
        let mut reg = MetricsRegistry::new();
        for v in [0.5, 1.0, 2.0, 150.0] {
            reg.histogram_observe_with("lat", "l.", &[], v, || vec![1.0, 10.0, 100.0]);
        }
        let text = reg.render();
        assert!(text.contains("lat_bucket{le=\"1\"} 2"));
        assert!(text.contains("lat_bucket{le=\"10\"} 3"));
        assert!(text.contains("lat_bucket{le=\"100\"} 3"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("lat_sum{} 153.5") || text.contains("lat_sum 153.5"));
        assert!(text.contains("lat_count 4"));
        validate_exposition(&text).expect("valid");
    }

    #[test]
    fn histogram_quantiles_hit_bucket_bounds() {
        let mut reg = MetricsRegistry::new();
        for v in 1..=100 {
            reg.histogram_observe_with("q", "q.", &[], v as f64, || {
                (1..=10).map(|b| (b * 10) as f64).collect()
            });
        }
        assert_eq!(reg.histogram_quantile("q", &[], 0.5), Some(50.0));
        assert_eq!(reg.histogram_quantile("q", &[], 0.9), Some(90.0));
        assert_eq!(reg.histogram_quantile("q", &[], 0.99), Some(100.0));
        assert_eq!(reg.histogram_quantile("missing", &[], 0.5), None);
    }

    #[test]
    fn non_finite_observations_are_dropped() {
        let mut reg = MetricsRegistry::new();
        reg.histogram_observe("h", "h.", &[], f64::NAN);
        reg.histogram_observe("h", "h.", &[], f64::INFINITY);
        reg.histogram_observe("h", "h.", &[], 1.0);
        assert_eq!(reg.histogram_count("h", &[]), Some(1));
    }

    #[test]
    fn label_escaping_round_trips_through_the_validator() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add(
            "odd_total",
            "Weird\nhelp \\ text.",
            &[("path", "a\"b\\c\nd")],
            1.0,
        );
        let text = reg.render();
        assert!(text.contains("path=\"a\\\"b\\\\c\\nd\""));
        assert!(text.contains("# HELP odd_total Weird\\nhelp \\\\ text."));
        validate_exposition(&text).expect("escaped output parses");
    }

    #[test]
    fn rendering_is_deterministic_and_sorted() {
        let build = |order: &[(&str, f64)]| {
            let mut reg = MetricsRegistry::new();
            for (name, v) in order {
                reg.counter_add(name, "c.", &[("k", "v")], *v);
            }
            reg.counter_add("zz", "z.", &[("b", "2")], 1.0);
            reg.counter_add("zz", "z.", &[("a", "1")], 1.0);
            reg.render()
        };
        let a = build(&[("alpha", 1.0), ("beta", 2.0)]);
        let b = build(&[("beta", 2.0), ("alpha", 1.0)]);
        assert_eq!(a, b, "insertion order must not leak into the exposition");
        assert!(a.find("alpha").unwrap() < a.find("beta").unwrap());
        assert!(a.find("zz{a=\"1\"}").unwrap() < a.find("zz{b=\"2\"}").unwrap());
    }

    #[test]
    fn validator_rejects_structural_violations() {
        // Sample without a TYPE header.
        assert!(validate_exposition("loose_metric 1\n").is_err());
        // Negative counter.
        let bad = "# HELP c c.\n# TYPE c counter\nc -1\n";
        assert!(validate_exposition(bad).unwrap_err().contains("negative"));
        // Families out of order.
        let unsorted = "# HELP b b.\n# TYPE b counter\nb 1\n# HELP a a.\n# TYPE a counter\na 1\n";
        assert!(validate_exposition(unsorted)
            .unwrap_err()
            .contains("out of order"));
        // Histogram with decreasing cumulative counts.
        let shrink = "# HELP h h.\n# TYPE h histogram\n\
                      h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n\
                      h_sum 9\nh_count 5\n";
        assert!(validate_exposition(shrink)
            .unwrap_err()
            .contains("decrease"));
        // Histogram missing the +Inf bucket.
        let no_inf = "# HELP h h.\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        assert!(validate_exposition(no_inf).unwrap_err().contains("+Inf"));
        // +Inf bucket disagreeing with _count.
        let mismatch = "# HELP h h.\n# TYPE h histogram\n\
                        h_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n";
        assert!(validate_exposition(mismatch)
            .unwrap_err()
            .contains("_count"));
    }

    #[test]
    fn log_buckets_are_log_spaced() {
        let b = log_buckets(0.001, 1.0, 1);
        assert_eq!(b.len(), 4);
        assert!((b[0] - 0.001).abs() < 1e-12);
        assert!((b[3] - 1.0).abs() < 1e-9);
        let d = default_buckets();
        assert!(d.len() > 40 && d.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn windowed_histogram_expires_old_slots() {
        let cfg = || WindowConfig {
            window_secs: 60,
            slots: 6,
            buckets: vec![1.0, 10.0, 100.0, 1000.0],
        };
        let mut reg = MetricsRegistry::new();
        // Ten slow observations early in the run...
        for i in 0..10 {
            reg.windowed_observe_with("lat_window", "w.", &[], 500.0, i, cfg);
        }
        assert_eq!(reg.windowed_quantile("lat_window", &[], 0.99), Some(1000.0));
        // ...then, two minutes later, fast ones: the slow slots are out of
        // the 60 s window anchored at the newest observation.
        for i in 0..10 {
            reg.windowed_observe_with("lat_window", "w.", &[], 0.5, 120 + i, cfg);
        }
        assert_eq!(reg.windowed_quantile("lat_window", &[], 0.99), Some(1.0));
        assert_eq!(reg.windowed_count("lat_window", &[]), Some(10));
    }

    #[test]
    fn windowed_histogram_renders_quantile_gauges() {
        let mut reg = MetricsRegistry::new();
        for i in 0..100u64 {
            reg.windowed_observe("w_seconds_window", "w.", &[("endpoint", "/p")], 0.001, i);
        }
        let text = reg.render();
        assert!(text.contains("# TYPE w_seconds_window gauge"), "{text}");
        assert!(
            text.contains("w_seconds_window{endpoint=\"/p\",quantile=\"0.99\"}"),
            "{text}"
        );
        validate_exposition(&text).expect("windowed exposition is valid");
    }

    #[test]
    fn empty_windowed_series_render_no_samples() {
        let mut reg = MetricsRegistry::new();
        reg.windowed_observe("w_window", "w.", &[], f64::NAN, 0);
        let text = reg.render();
        assert!(text.contains("# TYPE w_window gauge"));
        assert!(!text.contains("w_window{"), "{text}");
        validate_exposition(&text).expect("headers without samples are valid");
    }

    #[test]
    fn windowed_gauge_tracks_the_window_peak() {
        let mut reg = MetricsRegistry::new();
        reg.windowed_gauge_set("depth_window", "d.", &[], 9.0, 0);
        reg.windowed_gauge_set("depth_window", "d.", &[], 3.0, 5);
        assert_eq!(reg.value("depth_window", &[]), Some(9.0));
        // 10 minutes later the early peak has aged out.
        reg.windowed_gauge_set("depth_window", "d.", &[], 2.0, 600);
        assert_eq!(reg.value("depth_window", &[]), Some(2.0));
        let text = reg.render();
        assert!(text.contains("depth_window 2"), "{text}");
        validate_exposition(&text).expect("valid");
    }

    #[test]
    fn windowed_backwards_time_is_dropped() {
        let mut reg = MetricsRegistry::new();
        reg.windowed_observe("w_window", "w.", &[], 1.0, 1000);
        // Same slot index, older epoch: must not clobber the newer slot.
        reg.windowed_observe("w_window", "w.", &[], 1.0, 400);
        assert_eq!(reg.windowed_count("w_window", &[]), Some(1));
    }

    #[test]
    fn recorder_bridge_folds_spans_and_counters() {
        let mut rec = Recorder::manual();
        let a = rec.start_cat("measure", "stage");
        rec.set_time(10);
        rec.end(a);
        let b = rec.start_cat("assemble", "stage");
        rec.set_time(14);
        rec.end(b);
        rec.counter("cache/hits", 7.0);

        let mut reg = MetricsRegistry::new();
        reg.observe_recorder("pulp", &rec);
        assert_eq!(
            reg.histogram_count("pulp_stage_ticks", &[("stage", "stage")]),
            Some(2)
        );
        assert_eq!(
            reg.value("pulp_counter", &[("name", "cache/hits")]),
            Some(7.0)
        );
        validate_exposition(&reg.render()).expect("bridged exposition is valid");
    }
}

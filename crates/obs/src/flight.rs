//! Flight recorder: bounded retention of completed request traces.
//!
//! The serving tier stamps every admitted connection with a [`TraceContext`]
//! and records each request's stages as a span tree in a [`Recorder`]. On
//! completion the tree is frozen into a [`RequestTrace`] and pushed into the
//! [`FlightRecorder`], a lock-striped ring that keeps the last N completed
//! traces with O(1) eviction, plus a small "worst K since start" table for
//! post-hoc tail forensics. Retained traces render deterministically as
//! Chrome trace-event JSON (one thread lane per trace) accepted by
//! [`crate::validate_chrome_trace`], or as a compact JSON summary.

use crate::recorder::{Recorder, SpanId, SpanRecord};
use serde::Value;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identity of one request-scoped trace tree.
///
/// A context is stamped once at admission (a process-unique `trace_id` from
/// a [`TraceIdGen`]) and threaded through the [`Recorder`] that collects the
/// request's spans. `parent_span` re-roots spans recorded by a child-stage
/// recorder under a span of the recorder it is later merged into (see
/// [`Recorder::merge`]), so per-request spans form a single tree even when
/// stages record independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Process-unique trace id.
    pub trace_id: u64,
    /// Index (into the merge-target recorder's span list) of the span new
    /// root spans nest under; `None` at the root of the request.
    pub parent_span: Option<u64>,
}

impl TraceContext {
    /// A root context for `trace_id` with no parent span.
    pub fn root(trace_id: u64) -> Self {
        Self {
            trace_id,
            parent_span: None,
        }
    }

    /// This context re-rooted under `span`, for handing to a child stage
    /// whose recorder will be merged back under that span.
    #[must_use]
    pub fn child_of(self, span: SpanId) -> Self {
        Self {
            trace_id: self.trace_id,
            parent_span: Some(span.0 as u64),
        }
    }
}

/// Monotonic trace-id source: an atomic counter starting at a seed.
///
/// Ids are unique per generator (and therefore per process when one
/// generator is shared); seeding keeps test output reproducible.
#[derive(Debug)]
pub struct TraceIdGen {
    next: AtomicU64,
}

impl TraceIdGen {
    /// Creates a generator whose first id is `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            next: AtomicU64::new(seed),
        }
    }

    /// Returns the next trace id (consecutive from the seed).
    pub fn next_id(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }
}

impl Default for TraceIdGen {
    fn default() -> Self {
        Self::new(1)
    }
}

/// One completed request trace as retained by the [`FlightRecorder`].
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// Trace id stamped at admission.
    pub trace_id: u64,
    /// Request label (the endpoint path for the serving tier).
    pub label: String,
    /// Final status code (HTTP status for the serving tier).
    pub status: u16,
    /// Completed spans, root first, timestamps in recorder ticks (µs for
    /// the serving tier's request clock).
    pub spans: Vec<SpanRecord>,
    /// Completion sequence assigned by [`FlightRecorder::record`]; zero
    /// until recorded.
    seq: u64,
}

impl RequestTrace {
    /// Builds a trace from explicit parts (tests and non-recorder callers).
    pub fn new(trace_id: u64, label: &str, status: u16, spans: Vec<SpanRecord>) -> Self {
        Self {
            trace_id,
            label: label.to_string(),
            status,
            spans,
            seq: 0,
        }
    }

    /// Freezes a recorder's span tree into a trace. The trace id comes from
    /// the recorder's [`TraceContext`] (zero if none was set); open spans
    /// should be closed first ([`Recorder::close_all`]).
    pub fn from_recorder(label: &str, status: u16, rec: &Recorder) -> Self {
        Self::new(
            rec.trace().map(|t| t.trace_id).unwrap_or(0),
            label,
            status,
            rec.spans().to_vec(),
        )
    }

    /// Completion sequence number (insertion order across the recorder).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Total request duration in ticks: the extent of the span tree.
    pub fn total_ticks(&self) -> u64 {
        self.spans.iter().map(|s| s.end).max().unwrap_or(0)
            - self.spans.iter().map(|s| s.start).min().unwrap_or(0)
    }

    /// First span with the given name, if any.
    pub fn span(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.name == name)
    }
}

/// How many "worst since start" traces the recorder keeps.
const SLOW_TABLE_CAP: usize = 64;

/// Bounded lock-striped ring of the last N completed [`RequestTrace`]s.
///
/// Traces are sharded over stripes by trace id; each stripe is a
/// [`VecDeque`] with a fixed cap, so insertion evicts the stripe's oldest
/// trace in O(1) and contention is spread across stripes. A global atomic
/// sequence totals completions and lets [`FlightRecorder::recent`] merge
/// stripes back into completion order. A separate bounded table keeps the
/// worst [`SLOW_TABLE_CAP`] traces by total duration since start.
#[derive(Debug)]
pub struct FlightRecorder {
    stripes: Vec<Mutex<VecDeque<Arc<RequestTrace>>>>,
    stripe_cap: usize,
    seq: AtomicU64,
    slow: Mutex<Vec<Arc<RequestTrace>>>,
}

impl FlightRecorder {
    /// A recorder retaining roughly `capacity` traces over 8 stripes (the
    /// per-stripe cap rounds up, so total retention is at least
    /// `capacity`). `capacity` is clamped to at least 1.
    pub fn new(capacity: usize) -> Self {
        Self::with_stripes(capacity, 8)
    }

    /// A recorder with an explicit stripe count. With one stripe eviction
    /// order is exactly completion order (used by the eviction tests); more
    /// stripes trade exactness of the oldest-evicted guarantee for less
    /// lock contention.
    pub fn with_stripes(capacity: usize, stripes: usize) -> Self {
        let stripes = stripes.max(1);
        let stripe_cap = capacity.max(1).div_ceil(stripes);
        Self {
            stripes: (0..stripes).map(|_| Mutex::new(VecDeque::new())).collect(),
            stripe_cap,
            seq: AtomicU64::new(0),
            slow: Mutex::new(Vec::new()),
        }
    }

    /// Total retention across stripes (per-stripe cap × stripes).
    pub fn capacity(&self) -> usize {
        self.stripe_cap * self.stripes.len()
    }

    /// Maximum traces the slow table retains ([`SLOW_TABLE_CAP`]) — the
    /// upper bound for `/debug/slow?n=` requests.
    pub fn slow_capacity(&self) -> usize {
        SLOW_TABLE_CAP
    }

    /// Number of traces currently retained.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("flight stripe poisoned").len())
            .sum()
    }

    /// True when no trace has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Completions recorded since start (including evicted traces).
    pub fn completed(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Records a completed trace, evicting the owning stripe's oldest trace
    /// if the stripe is full. Returns the trace's completion sequence.
    pub fn record(&self, mut trace: RequestTrace) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        trace.seq = seq;
        let trace = Arc::new(trace);
        let stripe = (trace.trace_id % self.stripes.len() as u64) as usize;
        {
            let mut q = self.stripes[stripe].lock().expect("flight stripe poisoned");
            if q.len() >= self.stripe_cap {
                q.pop_front();
            }
            q.push_back(Arc::clone(&trace));
        }
        let total = trace.total_ticks();
        let mut slow = self.slow.lock().expect("flight slow table poisoned");
        // Sorted descending by duration (ties keep completion order); the
        // table is tiny, so a sorted insert beats re-sorting on read.
        let pos = slow.partition_point(|t| t.total_ticks() >= total);
        if pos < SLOW_TABLE_CAP {
            slow.insert(pos, trace);
            slow.truncate(SLOW_TABLE_CAP);
        }
        seq
    }

    /// The most recent `n` retained traces in completion order (oldest
    /// first). Merges all stripes, so this is the read-side (slow) path.
    pub fn recent(&self, n: usize) -> Vec<Arc<RequestTrace>> {
        let mut all: Vec<Arc<RequestTrace>> = Vec::new();
        for stripe in &self.stripes {
            all.extend(
                stripe
                    .lock()
                    .expect("flight stripe poisoned")
                    .iter()
                    .cloned(),
            );
        }
        all.sort_by_key(|t| t.seq);
        if all.len() > n {
            all.drain(..all.len() - n);
        }
        all
    }

    /// The worst `k` traces by total duration since start (not limited to
    /// the ring's retention window), slowest first.
    pub fn slowest(&self, k: usize) -> Vec<Arc<RequestTrace>> {
        let slow = self.slow.lock().expect("flight slow table poisoned");
        slow.iter().take(k).cloned().collect()
    }

    /// The most recent `n` traces as a Chrome trace-event JSON string; see
    /// [`chrome_value_of_traces`].
    pub fn chrome_recent(&self, n: usize, process_name: &str) -> String {
        serde_json::to_string(&chrome_value_of_traces(&self.recent(n), process_name))
            .expect("value serialises")
    }

    /// The worst `k` traces since start as a deterministic JSON summary;
    /// see [`summary_value_of_traces`].
    pub fn slow_json(&self, k: usize) -> String {
        serde_json::to_string(&summary_value_of_traces(&self.slowest(k))).expect("value serialises")
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Map(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Renders a set of completed traces as one Chrome trace-event [`Value`].
///
/// Each trace gets its own thread lane (`tid` = position in `traces`,
/// thread-named `trace<id> <label>`), so per-lane timestamps restart at the
/// trace's own clock zero while staying monotone within the lane — the
/// shape [`crate::validate_chrome_trace`] checks. Span `args` carry the
/// trace id and status on root spans in addition to any recorded
/// annotations.
pub fn chrome_value_of_traces(traces: &[Arc<RequestTrace>], process_name: &str) -> Value {
    let mut events: Vec<Value> = Vec::new();
    events.push(obj(vec![
        ("name", Value::Str("process_name".into())),
        ("ph", Value::Str("M".into())),
        ("pid", Value::U64(0)),
        ("tid", Value::U64(0)),
        ("args", obj(vec![("name", Value::Str(process_name.into()))])),
    ]));
    for (tid, trace) in traces.iter().enumerate() {
        events.push(obj(vec![
            ("name", Value::Str("thread_name".into())),
            ("ph", Value::Str("M".into())),
            ("pid", Value::U64(0)),
            ("tid", Value::U64(tid as u64)),
            (
                "args",
                obj(vec![(
                    "name",
                    Value::Str(format!("trace{} {}", trace.trace_id, trace.label)),
                )]),
            ),
        ]));
    }
    for (tid, trace) in traces.iter().enumerate() {
        for s in &trace.spans {
            let mut args: Vec<(String, Value)> = s
                .args
                .iter()
                .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                .collect();
            if s.parent.is_none() {
                args.push(("status".to_string(), Value::U64(u64::from(trace.status))));
                args.push(("trace_id".to_string(), Value::U64(trace.trace_id)));
            }
            let mut fields = vec![
                ("name", Value::Str(s.name.clone())),
                (
                    "cat",
                    Value::Str(if s.cat.is_empty() {
                        "request".into()
                    } else {
                        s.cat.clone()
                    }),
                ),
                ("ph", Value::Str("X".into())),
                ("ts", Value::U64(s.start)),
                ("dur", Value::U64(s.duration())),
                ("pid", Value::U64(0)),
                ("tid", Value::U64(tid as u64)),
            ];
            if !args.is_empty() {
                args.sort_by(|a, b| a.0.cmp(&b.0));
                fields.push(("args", Value::Map(args)));
            }
            events.push(obj(fields));
        }
    }
    Value::Map(vec![
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
        ("traceEvents".to_string(), Value::Seq(events)),
    ])
}

/// Renders traces as a deterministic JSON summary: a sequence of
/// `{trace_id, label, status, total_ticks, spans: [{name, start, dur}]}`
/// maps, in the order given.
pub fn summary_value_of_traces(traces: &[Arc<RequestTrace>]) -> Value {
    Value::Seq(
        traces
            .iter()
            .map(|t| {
                Value::Map(vec![
                    ("trace_id".to_string(), Value::U64(t.trace_id)),
                    ("label".to_string(), Value::Str(t.label.clone())),
                    ("status".to_string(), Value::U64(u64::from(t.status))),
                    ("total_ticks".to_string(), Value::U64(t.total_ticks())),
                    (
                        "spans".to_string(),
                        Value::Seq(
                            t.spans
                                .iter()
                                .map(|s| {
                                    Value::Map(vec![
                                        ("name".to_string(), Value::Str(s.name.clone())),
                                        ("start".to_string(), Value::U64(s.start)),
                                        ("dur".to_string(), Value::U64(s.duration())),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::validate_chrome_trace;

    fn trace_of(id: u64, total: u64) -> RequestTrace {
        let mut rec = Recorder::manual();
        rec.set_trace(TraceContext::root(id));
        let root = rec.start("request");
        let child = rec.start("work");
        rec.set_time(total / 2);
        rec.end(child);
        rec.set_time(total);
        rec.end(root);
        RequestTrace::from_recorder("/predict", 200, &rec)
    }

    #[test]
    fn id_gen_is_consecutive_from_seed() {
        let gen = TraceIdGen::new(7);
        assert_eq!(gen.next_id(), 7);
        assert_eq!(gen.next_id(), 8);
    }

    #[test]
    fn child_context_keeps_trace_id() {
        let ctx = TraceContext::root(3);
        let mut rec = Recorder::manual();
        let span = rec.start("stage");
        let child = ctx.child_of(span);
        assert_eq!(child.trace_id, 3);
        assert_eq!(child.parent_span, Some(0));
    }

    #[test]
    fn single_stripe_evicts_oldest_in_completion_order() {
        let fr = FlightRecorder::with_stripes(3, 1);
        for id in 0..5u64 {
            fr.record(trace_of(id, 10 + id));
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.completed(), 5);
        let recent = fr.recent(10);
        let ids: Vec<u64> = recent.iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, vec![2, 3, 4], "oldest traces must be evicted first");
        let seqs: Vec<u64> = recent.iter().map(|t| t.seq()).collect();
        assert_eq!(seqs, vec![3, 4, 5]);
    }

    #[test]
    fn striped_recent_merges_in_completion_order() {
        let fr = FlightRecorder::new(16);
        for id in [5u64, 2, 9, 4, 0, 7] {
            fr.record(trace_of(id, 100));
        }
        let ids: Vec<u64> = fr.recent(4).iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, vec![9, 4, 0, 7]);
    }

    #[test]
    fn slowest_survives_ring_eviction() {
        let fr = FlightRecorder::with_stripes(2, 1);
        fr.record(trace_of(1, 500)); // slowest, will be evicted from the ring
        for id in 2..6u64 {
            fr.record(trace_of(id, 10));
        }
        assert!(fr.recent(10).iter().all(|t| t.trace_id != 1));
        let slow = fr.slowest(2);
        assert_eq!(slow[0].trace_id, 1);
        assert_eq!(slow[0].total_ticks(), 500);
    }

    #[test]
    fn chrome_rendering_validates_and_keeps_per_trace_lanes() {
        let fr = FlightRecorder::new(8);
        fr.record(trace_of(1, 40));
        fr.record(trace_of(2, 20));
        let json = fr.chrome_recent(8, "pulp-serve");
        validate_chrome_trace(&json).expect("flight chrome trace must validate");
        assert!(
            json.contains("trace1 /predict"),
            "missing lane name: {json}"
        );
        assert!(json.contains("\"trace_id\":2"), "missing root args: {json}");
    }

    #[test]
    fn slow_json_is_deterministic_and_sorted() {
        let fr = FlightRecorder::new(8);
        fr.record(trace_of(1, 10));
        fr.record(trace_of(2, 30));
        fr.record(trace_of(3, 20));
        let json = fr.slow_json(2);
        let v: Value = serde_json::from_str(&json).expect("valid JSON");
        let seq = v.as_seq().expect("array");
        assert_eq!(seq.len(), 2);
        let first = seq[0].field("trace_id").unwrap().as_u64().unwrap();
        let second = seq[1].field("trace_id").unwrap().as_u64().unwrap();
        assert_eq!((first, second), (2, 3));
    }
}

//! Run journal — a durable, append-only JSONL event log per batch run.
//!
//! Batch observability before this module was ephemeral: stderr progress
//! lines and in-process [`Recorder`](crate::Recorder)s vanish with the
//! process, so an hour-scale labelling sweep that dies at sample 40k
//! leaves nothing to post-mortem. A [`JournalWriter`] gives every run a
//! machine-readable record on disk: one JSON object per line, strictly
//! sequenced, schema-versioned, correlated to the run's `RunManifest` by
//! a seeded run id, and finalized with a terminating `run_end` record so
//! truncated journals are mechanically detectable.
//!
//! The encoding is **canonical** — fixed field order, one line per event,
//! `\n` separators — so a journal read back through [`JournalReader`] and
//! re-rendered with [`render_journal`] reproduces the original bytes.
//! [`validate_journal`] mirrors the Chrome-trace and metrics-exposition
//! validators: it parses the text structurally and reports the first
//! violation (bad version, sequence gap, run-id mismatch, unbalanced
//! stages, missing finalizer) as a human-readable error.
//!
//! # Examples
//!
//! ```
//! use pulp_obs::journal::{
//!     render_report, seeded_run_id, validate_journal, JournalEvent, JournalReader,
//!     JournalWriter,
//! };
//!
//! let mut w = JournalWriter::in_memory("demo", "abc123", 42);
//! w.event(JournalEvent::StageStart { stage: "measure".into() }).unwrap();
//! w.event(JournalEvent::StageEnd { stage: "measure".into(), wall_ms: 12.5 }).unwrap();
//! let text = w.finalize_to_string().unwrap();
//!
//! validate_journal(&text).unwrap();
//! let journal = JournalReader::read_str(&text).unwrap();
//! assert_eq!(journal.run_id, seeded_run_id("demo", "abc123", 42));
//! assert!(render_report(&journal).contains("measure"));
//! ```

use serde::Value;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Version of the journal line schema. Bumped whenever an event's field
/// set or semantics change; readers refuse journals from a different
/// version instead of misinterpreting them.
pub const JOURNAL_SCHEMA_VERSION: u64 = 1;

/// Number of slowest kernels listed by [`render_report`].
pub const REPORT_TOP_K: usize = 8;

/// One typed journal event. The writer stamps each with the schema
/// version, a strictly increasing sequence number and the run id; the
/// variants here carry only the event payload.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEvent {
    /// First record of every journal: identifies the run. Written by the
    /// [`JournalWriter`] constructor, never by callers.
    RunStart {
        /// Tool name (`headline`, `bench_sim`, ...).
        tool: String,
        /// `RunManifest::manifest_hash` of the owning run (wall-time
        /// excluded, so it is known before the run finishes).
        manifest_hash: String,
        /// The run's RNG seed.
        seed: u64,
    },
    /// A pipeline stage began.
    StageStart {
        /// Stage name (`measure`, `train`, ...).
        stage: String,
    },
    /// A pipeline stage finished.
    StageEnd {
        /// Stage name; must match the most recent unclosed `StageStart`.
        stage: String,
        /// Stage wall time in milliseconds.
        wall_ms: f64,
    },
    /// Periodic progress report from one sweep shard.
    Heartbeat {
        /// Shard (worker) index.
        shard: u64,
        /// Kernels this shard has finished.
        done: u64,
        /// Kernels assigned to this shard in total.
        assigned: u64,
        /// Milliseconds since the sweep started.
        elapsed_ms: u64,
        /// This shard's throughput so far (kernels per second).
        kernels_per_s: f64,
        /// Sweep-cache hits observed by this shard so far.
        cache_hits: u64,
        /// Sweep-cache misses observed by this shard so far.
        cache_misses: u64,
    },
    /// Sweep-cache attribution for the whole run.
    Cache {
        /// Cache hits.
        hits: u64,
        /// Cache misses.
        misses: u64,
        /// Stale entries invalidated.
        invalidations: u64,
    },
    /// A kernel whose 1..=8-core sweep was among its shard's slowest.
    SlowKernel {
        /// Sample id (`suite/name/dtype/payload`) or kernel name.
        sample: String,
        /// Sweep wall time in milliseconds.
        wall_ms: f64,
        /// Single-core cycle count of the kernel (0 when unknown).
        cycles: u64,
    },
    /// A headline metric produced by the run, for trajectory tooling
    /// (`pulp_cli bench history`).
    BenchRecord {
        /// Bench kind (`headline`, `sim`, `serve`).
        bench: String,
        /// Metric name.
        name: String,
        /// Metric value.
        value: f64,
    },
    /// Last record of every journal. `ok == false` means the writer was
    /// dropped without [`JournalWriter::finalize`] — the run died mid-way.
    /// Written by the writer, never by callers.
    RunEnd {
        /// Whether the run finished cleanly.
        ok: bool,
        /// Number of records before this one (== this record's `seq`).
        events: u64,
    },
}

impl JournalEvent {
    fn kind(&self) -> &'static str {
        match self {
            Self::RunStart { .. } => "run_start",
            Self::StageStart { .. } => "stage_start",
            Self::StageEnd { .. } => "stage_end",
            Self::Heartbeat { .. } => "heartbeat",
            Self::Cache { .. } => "cache",
            Self::SlowKernel { .. } => "slow_kernel",
            Self::BenchRecord { .. } => "bench_record",
            Self::RunEnd { .. } => "run_end",
        }
    }

    /// Canonical encoding of the full journal line: version, sequence,
    /// run id, event kind, then the payload fields in a fixed order.
    fn to_value(&self, seq: u64, run_id: &str) -> Value {
        let mut map: Vec<(String, Value)> = vec![
            ("v".into(), Value::U64(JOURNAL_SCHEMA_VERSION)),
            ("seq".into(), Value::U64(seq)),
            ("run".into(), Value::Str(run_id.into())),
            ("ev".into(), Value::Str(self.kind().into())),
        ];
        match self {
            Self::RunStart {
                tool,
                manifest_hash,
                seed,
            } => {
                map.push(("tool".into(), Value::Str(tool.clone())));
                map.push(("manifest".into(), Value::Str(manifest_hash.clone())));
                map.push(("seed".into(), Value::U64(*seed)));
            }
            Self::StageStart { stage } => {
                map.push(("stage".into(), Value::Str(stage.clone())));
            }
            Self::StageEnd { stage, wall_ms } => {
                map.push(("stage".into(), Value::Str(stage.clone())));
                map.push(("wall_ms".into(), Value::F64(*wall_ms)));
            }
            Self::Heartbeat {
                shard,
                done,
                assigned,
                elapsed_ms,
                kernels_per_s,
                cache_hits,
                cache_misses,
            } => {
                map.push(("shard".into(), Value::U64(*shard)));
                map.push(("done".into(), Value::U64(*done)));
                map.push(("assigned".into(), Value::U64(*assigned)));
                map.push(("elapsed_ms".into(), Value::U64(*elapsed_ms)));
                map.push(("kernels_per_s".into(), Value::F64(*kernels_per_s)));
                map.push(("cache_hits".into(), Value::U64(*cache_hits)));
                map.push(("cache_misses".into(), Value::U64(*cache_misses)));
            }
            Self::Cache {
                hits,
                misses,
                invalidations,
            } => {
                map.push(("hits".into(), Value::U64(*hits)));
                map.push(("misses".into(), Value::U64(*misses)));
                map.push(("invalidations".into(), Value::U64(*invalidations)));
            }
            Self::SlowKernel {
                sample,
                wall_ms,
                cycles,
            } => {
                map.push(("sample".into(), Value::Str(sample.clone())));
                map.push(("wall_ms".into(), Value::F64(*wall_ms)));
                map.push(("cycles".into(), Value::U64(*cycles)));
            }
            Self::BenchRecord { bench, name, value } => {
                map.push(("bench".into(), Value::Str(bench.clone())));
                map.push(("name".into(), Value::Str(name.clone())));
                map.push(("value".into(), Value::F64(*value)));
            }
            Self::RunEnd { ok, events } => {
                map.push(("ok".into(), Value::Bool(*ok)));
                map.push(("events".into(), Value::U64(*events)));
            }
        }
        Value::Map(map)
    }

    /// Decodes one parsed journal line into `(seq, run_id, event)`.
    fn from_value(v: &Value) -> Result<(u64, String, Self), String> {
        let field = |name: &str| v.field(name).map_err(|e| e.to_string());
        let text = |name: &str| {
            field(name).and_then(|f| f.as_str().map(str::to_string).map_err(|e| e.to_string()))
        };
        let uint = |name: &str| field(name).and_then(|f| f.as_u64().map_err(|e| e.to_string()));
        let float = |name: &str| field(name).and_then(|f| f.as_f64().map_err(|e| e.to_string()));
        let version = uint("v")?;
        if version != JOURNAL_SCHEMA_VERSION {
            return Err(format!(
                "unsupported journal schema version {version} (reader supports {JOURNAL_SCHEMA_VERSION})"
            ));
        }
        let seq = uint("seq")?;
        let run = text("run")?;
        let kind = text("ev")?;
        let ev = match kind.as_str() {
            "run_start" => Self::RunStart {
                tool: text("tool")?,
                manifest_hash: text("manifest")?,
                seed: uint("seed")?,
            },
            "stage_start" => Self::StageStart {
                stage: text("stage")?,
            },
            "stage_end" => Self::StageEnd {
                stage: text("stage")?,
                wall_ms: float("wall_ms")?,
            },
            "heartbeat" => Self::Heartbeat {
                shard: uint("shard")?,
                done: uint("done")?,
                assigned: uint("assigned")?,
                elapsed_ms: uint("elapsed_ms")?,
                kernels_per_s: float("kernels_per_s")?,
                cache_hits: uint("cache_hits")?,
                cache_misses: uint("cache_misses")?,
            },
            "cache" => Self::Cache {
                hits: uint("hits")?,
                misses: uint("misses")?,
                invalidations: uint("invalidations")?,
            },
            "slow_kernel" => Self::SlowKernel {
                sample: text("sample")?,
                wall_ms: float("wall_ms")?,
                cycles: uint("cycles")?,
            },
            "bench_record" => Self::BenchRecord {
                bench: text("bench")?,
                name: text("name")?,
                value: float("value")?,
            },
            "run_end" => Self::RunEnd {
                ok: field("ok")?.as_bool().map_err(|e| e.to_string())?,
                events: uint("events")?,
            },
            other => return Err(format!("unknown event kind `{other}`")),
        };
        Ok((seq, run, ev))
    }
}

/// Derives the journal's run id from the identity of the run: the tool
/// name, the manifest hash (which already folds in versions, config and
/// model hashes, protocol and seed) and the seed again for direct
/// greppability. FNV-1a 64, 16 hex digits — the same hash family as the
/// sweep-cache keys.
pub fn seeded_run_id(tool: &str, manifest_hash: &str, seed: u64) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for chunk in [tool.as_bytes(), b"\0", manifest_hash.as_bytes(), b"\0"] {
        for &b in chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    }
    for b in seed.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    format!("{h:016x}")
}

enum JournalSink {
    File(BufWriter<File>),
    Memory(Vec<u8>),
}

impl JournalSink {
    fn write_line(&mut self, line: &str) -> io::Result<()> {
        match self {
            Self::File(w) => {
                w.write_all(line.as_bytes())?;
                w.write_all(b"\n")
            }
            Self::Memory(buf) => {
                buf.extend_from_slice(line.as_bytes());
                buf.push(b'\n');
                Ok(())
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Self::File(w) => w.flush(),
            Self::Memory(_) => Ok(()),
        }
    }
}

/// Appends journal events to a file (or an in-memory buffer in tests),
/// stamping each line with the schema version, a strictly increasing
/// sequence number and the run id.
///
/// The `run_start` record is written at construction and the `run_end`
/// finalizer by [`finalize`](Self::finalize) — or, if the writer is
/// dropped unfinalized (panic, early return), by `Drop` with
/// `ok == false`. A journal with no `run_end` at all means the process
/// died without unwinding; both shapes are detectable by
/// [`validate_journal`].
pub struct JournalWriter {
    sink: JournalSink,
    run_id: String,
    seq: u64,
    finalized: bool,
}

impl JournalWriter {
    /// Creates (truncating) `path` and writes the `run_start` record.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write failures.
    pub fn create(
        path: &Path,
        tool: &str,
        manifest_hash: &str,
        seed: u64,
    ) -> io::Result<JournalWriter> {
        let sink = JournalSink::File(BufWriter::new(File::create(path)?));
        Self::start(sink, tool, manifest_hash, seed)
    }

    /// An in-memory journal for tests; retrieve the text with
    /// [`finalize_to_string`](Self::finalize_to_string).
    pub fn in_memory(tool: &str, manifest_hash: &str, seed: u64) -> JournalWriter {
        Self::start(JournalSink::Memory(Vec::new()), tool, manifest_hash, seed)
            .expect("in-memory journal writes cannot fail")
    }

    fn start(
        sink: JournalSink,
        tool: &str,
        manifest_hash: &str,
        seed: u64,
    ) -> io::Result<JournalWriter> {
        let mut w = JournalWriter {
            sink,
            run_id: seeded_run_id(tool, manifest_hash, seed),
            seq: 0,
            finalized: false,
        };
        w.write(&JournalEvent::RunStart {
            tool: tool.into(),
            manifest_hash: manifest_hash.into(),
            seed,
        })?;
        Ok(w)
    }

    /// The run id stamped on every line.
    pub fn run_id(&self) -> &str {
        &self.run_id
    }

    /// Appends one event.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, and rejects `RunStart`/`RunEnd` — those frame
    /// the journal and are written by the writer itself.
    pub fn event(&mut self, ev: JournalEvent) -> io::Result<()> {
        if matches!(
            ev,
            JournalEvent::RunStart { .. } | JournalEvent::RunEnd { .. }
        ) {
            return Err(io::Error::other(
                "run_start/run_end are framed by the writer, not appended by callers",
            ));
        }
        self.write(&ev)
    }

    /// Appends a batch of events (e.g. a worker's buffered heartbeats,
    /// merged after the sweep joins).
    ///
    /// # Errors
    ///
    /// See [`event`](Self::event).
    pub fn events(&mut self, evs: impl IntoIterator<Item = JournalEvent>) -> io::Result<()> {
        for ev in evs {
            self.event(ev)?;
        }
        Ok(())
    }

    fn write(&mut self, ev: &JournalEvent) -> io::Result<()> {
        let line = serde_json::to_string(&ev.to_value(self.seq, &self.run_id))
            .map_err(|e| io::Error::other(e.to_string()))?;
        self.sink.write_line(&line)?;
        self.seq += 1;
        Ok(())
    }

    fn write_end(&mut self, ok: bool) -> io::Result<()> {
        self.finalized = true;
        let end = JournalEvent::RunEnd {
            ok,
            events: self.seq,
        };
        self.write(&end)?;
        self.sink.flush()
    }

    /// Writes the `run_end` finalizer (`ok = true`) and flushes.
    ///
    /// # Errors
    ///
    /// Propagates write/flush failures.
    pub fn finalize(mut self) -> io::Result<()> {
        self.write_end(true)
    }

    /// [`finalize`](Self::finalize) for in-memory journals, returning the
    /// full text.
    ///
    /// # Errors
    ///
    /// Fails for file-backed writers.
    pub fn finalize_to_string(mut self) -> io::Result<String> {
        self.write_end(true)?;
        match std::mem::replace(&mut self.sink, JournalSink::Memory(Vec::new())) {
            JournalSink::Memory(buf) => {
                String::from_utf8(buf).map_err(|e| io::Error::other(e.to_string()))
            }
            JournalSink::File(_) => Err(io::Error::other(
                "finalize_to_string on a file-backed journal; use finalize",
            )),
        }
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        if !self.finalized {
            // Unwinding past an unfinalized journal: mark the run failed
            // so readers can tell a crash from a clean finish. Errors are
            // swallowed — Drop must not panic.
            let _ = self.write_end(false);
        }
    }
}

/// A fully parsed and validated journal.
#[derive(Debug, Clone, PartialEq)]
pub struct Journal {
    /// Run id shared by every line.
    pub run_id: String,
    /// All events in sequence order, `run_start` first, `run_end` last.
    pub events: Vec<JournalEvent>,
}

impl Journal {
    /// The `run_start` payload: `(tool, manifest_hash, seed)`.
    pub fn run_start(&self) -> (&str, &str, u64) {
        match &self.events[0] {
            JournalEvent::RunStart {
                tool,
                manifest_hash,
                seed,
            } => (tool, manifest_hash, *seed),
            _ => unreachable!("validated journals start with run_start"),
        }
    }

    /// Whether the run finished cleanly (`run_end.ok`).
    pub fn ok(&self) -> bool {
        match self.events.last() {
            Some(JournalEvent::RunEnd { ok, .. }) => *ok,
            _ => unreachable!("validated journals end with run_end"),
        }
    }
}

/// Reads journals back from text or disk, enforcing the full structural
/// contract (see [`validate_journal`]).
pub struct JournalReader;

impl JournalReader {
    /// Parses and validates journal text.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural violation.
    pub fn read_str(text: &str) -> Result<Journal, String> {
        let mut events = Vec::new();
        let mut run_id: Option<String> = None;
        let mut stage_stack: Vec<String> = Vec::new();
        let mut saw_end = false;
        if text.is_empty() {
            return Err("empty journal (no run_start)".into());
        }
        if !text.ends_with('\n') {
            return Err("truncated journal: last line is incomplete (no trailing newline)".into());
        }
        for (lineno, line) in text.lines().enumerate() {
            let n = lineno + 1;
            let v: Value = serde_json::from_str(line)
                .map_err(|e| format!("line {n}: not valid JSON ({e})"))?;
            let (seq, run, ev) =
                JournalEvent::from_value(&v).map_err(|e| format!("line {n}: {e}"))?;
            if saw_end {
                return Err(format!("line {n}: event after run_end"));
            }
            if seq != events.len() as u64 {
                return Err(format!(
                    "line {n}: sequence gap (expected seq {}, got {seq})",
                    events.len()
                ));
            }
            match &run_id {
                None => {
                    if !matches!(ev, JournalEvent::RunStart { .. }) {
                        return Err(format!(
                            "line {n}: journal must open with run_start, got {}",
                            ev.kind()
                        ));
                    }
                    run_id = Some(run);
                }
                Some(id) => {
                    if *id != run {
                        return Err(format!("line {n}: run id `{run}` differs from `{id}`"));
                    }
                    if matches!(ev, JournalEvent::RunStart { .. }) {
                        return Err(format!("line {n}: duplicate run_start"));
                    }
                }
            }
            match &ev {
                JournalEvent::StageStart { stage } => stage_stack.push(stage.clone()),
                JournalEvent::StageEnd { stage, .. } => match stage_stack.pop() {
                    Some(open) if open == *stage => {}
                    Some(open) => {
                        return Err(format!(
                            "line {n}: stage_end `{stage}` does not match open stage `{open}`"
                        ));
                    }
                    None => {
                        return Err(format!("line {n}: stage_end `{stage}` with no open stage"));
                    }
                },
                JournalEvent::RunEnd { events: count, .. } => {
                    if *count != events.len() as u64 {
                        return Err(format!(
                            "line {n}: run_end claims {count} events, journal has {}",
                            events.len()
                        ));
                    }
                    if let Some(open) = stage_stack.last() {
                        return Err(format!("line {n}: run_end with stage `{open}` still open"));
                    }
                    saw_end = true;
                }
                _ => {}
            }
            events.push(ev);
        }
        if !saw_end {
            return Err(format!(
                "truncated journal: no run_end after {} events (run died without unwinding)",
                events.len()
            ));
        }
        Ok(Journal {
            run_id: run_id.expect("nonempty journal has a run id"),
            events,
        })
    }

    /// Reads and validates a journal file.
    ///
    /// # Errors
    ///
    /// I/O failures and structural violations, both as readable text.
    pub fn read_file(path: &Path) -> Result<Journal, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::read_str(&text)
    }
}

/// Validates journal text structurally: every line is JSON of the current
/// schema version, sequence numbers are gap-free from 0, all lines share
/// one run id, the journal opens with `run_start`, stages nest (every
/// `stage_end` closes the most recent open `stage_start`), and the final
/// line is a `run_end` whose event count matches. Mirrors
/// [`validate_chrome_trace`](crate::validate_chrome_trace) and
/// [`validate_exposition`](crate::validate_exposition).
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn validate_journal(text: &str) -> Result<(), String> {
    JournalReader::read_str(text).map(|_| ())
}

/// Re-encodes a parsed journal into its canonical text. For any text
/// accepted by [`JournalReader::read_str`], `render_journal(&journal)`
/// reproduces the input byte-for-byte — the round-trip property the
/// integration tests pin at 1/2/8 shard threads.
pub fn render_journal(journal: &Journal) -> String {
    let mut out = String::new();
    for (seq, ev) in journal.events.iter().enumerate() {
        let line = serde_json::to_string(&ev.to_value(seq as u64, &journal.run_id))
            .expect("journal values serialise");
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Renders the human-readable run report `pulp_cli report` prints: run
/// identity, per-stage wall breakdown, per-shard throughput, the top-K
/// slowest kernels, cache attribution and bench records. A pure function
/// of the journal — byte-deterministic for a given input.
pub fn render_report(journal: &Journal) -> String {
    let (tool, manifest, seed) = journal.run_start();
    let mut out = String::new();
    let _ = writeln!(out, "run {}  tool={tool}  seed={seed}", journal.run_id);
    let _ = writeln!(out, "manifest {manifest}");
    let _ = writeln!(
        out,
        "status {}  events {}",
        if journal.ok() { "ok" } else { "FAILED" },
        journal.events.len()
    );

    // Stages, in completion order. Total = sum of top-level stages only
    // (depth 0 at the time the stage opened), so nested stages don't
    // double-count.
    let mut depth = 0usize;
    let mut stages: Vec<(String, f64, usize)> = Vec::new();
    let mut open_depths: Vec<usize> = Vec::new();
    for ev in &journal.events {
        match ev {
            JournalEvent::StageStart { .. } => {
                open_depths.push(depth);
                depth += 1;
            }
            JournalEvent::StageEnd { stage, wall_ms } => {
                depth = depth.saturating_sub(1);
                let d = open_depths.pop().unwrap_or(0);
                stages.push((stage.clone(), *wall_ms, d));
            }
            _ => {}
        }
    }
    if !stages.is_empty() {
        let total: f64 = stages
            .iter()
            .filter(|(_, _, d)| *d == 0)
            .map(|(_, w, _)| *w)
            .sum();
        let _ = writeln!(out, "\nstages (total {total:.1} ms)");
        for (stage, wall_ms, d) in &stages {
            let share = if total > 0.0 {
                wall_ms / total * 100.0
            } else {
                0.0
            };
            let indent = "  ".repeat(*d);
            let _ = writeln!(
                out,
                "  {indent}{stage:<18} {wall_ms:>10.1} ms  {share:>5.1}%"
            );
        }
    }

    // Shards: the last heartbeat per shard is its final word.
    let mut shards: Vec<(u64, &JournalEvent)> = Vec::new();
    for ev in &journal.events {
        if let JournalEvent::Heartbeat { shard, .. } = ev {
            match shards.iter_mut().find(|(s, _)| s == shard) {
                Some(slot) => slot.1 = ev,
                None => shards.push((*shard, ev)),
            }
        }
    }
    shards.sort_by_key(|(s, _)| *s);
    if !shards.is_empty() {
        let _ = writeln!(out, "\nshards");
        let _ = writeln!(
            out,
            "  {:>5} {:>6} {:>8} {:>10} {:>10} {:>7} {:>7}",
            "shard", "done", "assigned", "kernels/s", "elapsed", "hits", "misses"
        );
        for (shard, ev) in &shards {
            if let JournalEvent::Heartbeat {
                done,
                assigned,
                elapsed_ms,
                kernels_per_s,
                cache_hits,
                cache_misses,
                ..
            } = ev
            {
                let _ = writeln!(
                    out,
                    "  {shard:>5} {done:>6} {assigned:>8} {kernels_per_s:>10.1} {:>8.1} s {cache_hits:>7} {cache_misses:>7}",
                    *elapsed_ms as f64 / 1000.0
                );
            }
        }
    }

    // Top-K slowest kernels across all shards; ties broken by sample id
    // so the ordering is total.
    let mut slow: Vec<(&str, f64, u64)> = journal
        .events
        .iter()
        .filter_map(|ev| match ev {
            JournalEvent::SlowKernel {
                sample,
                wall_ms,
                cycles,
            } => Some((sample.as_str(), *wall_ms, *cycles)),
            _ => None,
        })
        .collect();
    slow.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(b.0))
    });
    slow.dedup_by(|a, b| a.0 == b.0);
    if !slow.is_empty() {
        let _ = writeln!(out, "\nslowest kernels (top {REPORT_TOP_K})");
        for (sample, wall_ms, cycles) in slow.iter().take(REPORT_TOP_K) {
            let _ = writeln!(out, "  {wall_ms:>10.2} ms  {cycles:>12} cycles  {sample}");
        }
    }

    // Cache attribution: the last cache event wins (it carries the final
    // counters).
    if let Some(JournalEvent::Cache {
        hits,
        misses,
        invalidations,
    }) = journal
        .events
        .iter()
        .rev()
        .find(|ev| matches!(ev, JournalEvent::Cache { .. }))
    {
        let total = hits + misses;
        let rate = if total > 0 {
            *hits as f64 / total as f64 * 100.0
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "\ncache  {hits} hits, {misses} misses, {invalidations} invalidations ({rate:.1}% hit rate)"
        );
    }

    let records: Vec<_> = journal
        .events
        .iter()
        .filter_map(|ev| match ev {
            JournalEvent::BenchRecord { bench, name, value } => Some((bench, name, value)),
            _ => None,
        })
        .collect();
    if !records.is_empty() {
        let _ = writeln!(out, "\nbench records");
        for (bench, name, value) in records {
            let _ = writeln!(out, "  {bench:<10} {name:<28} {value}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_journal() -> String {
        let mut w = JournalWriter::in_memory("headline", "deadbeef", 42);
        w.event(JournalEvent::StageStart {
            stage: "measure".into(),
        })
        .unwrap();
        w.event(JournalEvent::Heartbeat {
            shard: 0,
            done: 8,
            assigned: 16,
            elapsed_ms: 500,
            kernels_per_s: 16.0,
            cache_hits: 3,
            cache_misses: 5,
        })
        .unwrap();
        w.event(JournalEvent::SlowKernel {
            sample: "polybench/gemm/f32/8192".into(),
            wall_ms: 120.5,
            cycles: 180_000,
        })
        .unwrap();
        w.event(JournalEvent::Cache {
            hits: 3,
            misses: 13,
            invalidations: 0,
        })
        .unwrap();
        w.event(JournalEvent::StageEnd {
            stage: "measure".into(),
            wall_ms: 812.25,
        })
        .unwrap();
        w.event(JournalEvent::BenchRecord {
            bench: "headline".into(),
            name: "static_at_5".into(),
            value: 0.93,
        })
        .unwrap();
        w.finalize_to_string().unwrap()
    }

    #[test]
    fn journal_validates_and_round_trips_bit_identically() {
        let text = sample_journal();
        validate_journal(&text).expect("valid");
        let journal = JournalReader::read_str(&text).expect("readable");
        assert_eq!(journal.run_id, seeded_run_id("headline", "deadbeef", 42));
        assert_eq!(journal.events.len(), 8);
        assert!(journal.ok());
        assert_eq!(render_journal(&journal), text, "canonical re-encode");
    }

    #[test]
    fn run_ids_are_seeded_and_distinct() {
        let a = seeded_run_id("headline", "deadbeef", 42);
        assert_eq!(a, seeded_run_id("headline", "deadbeef", 42));
        assert_eq!(a.len(), 16);
        assert_ne!(a, seeded_run_id("headline", "deadbeef", 43));
        assert_ne!(a, seeded_run_id("bench_sim", "deadbeef", 42));
        assert_ne!(a, seeded_run_id("headline", "feedface", 42));
    }

    #[test]
    fn truncated_journals_are_detected() {
        let text = sample_journal();
        // Drop the run_end line entirely.
        let without_end = {
            let mut lines: Vec<&str> = text.lines().collect();
            lines.pop();
            let mut s = lines.join("\n");
            s.push('\n');
            s
        };
        let err = validate_journal(&without_end).unwrap_err();
        assert!(err.contains("no run_end"), "{err}");
        // Cut mid-line: the missing trailing newline marks the torn write.
        let torn = &text[..text.len() - 10];
        let err = validate_journal(torn).unwrap_err();
        assert!(err.contains("incomplete"), "{err}");
        assert!(validate_journal("").is_err());
    }

    #[test]
    fn dropped_writer_marks_the_run_failed() {
        // Simulate a panic path: build the same journal but capture the
        // drop output by writing to a temp file.
        let path = std::env::temp_dir().join(format!(
            "pulp-journal-drop-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        {
            let mut w = JournalWriter::create(&path, "t", "m", 1).expect("create");
            w.event(JournalEvent::StageStart { stage: "s".into() })
                .unwrap();
            // Dropped here without finalize — and with a stage still open.
        }
        let text = std::fs::read_to_string(&path).expect("read back");
        // The drop finalizer writes run_end ok=false; the open stage makes
        // strict validation fail loudly, which is the point: this journal
        // records a crashed run.
        let err = validate_journal(&text).unwrap_err();
        assert!(err.contains("still open"), "{err}");
        assert!(text.contains("\"ok\":false"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn clean_drop_without_open_stages_validates_as_failed_run() {
        let path = std::env::temp_dir().join(format!(
            "pulp-journal-drop2-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        {
            let mut w = JournalWriter::create(&path, "t", "m", 1).expect("create");
            w.event(JournalEvent::Cache {
                hits: 1,
                misses: 0,
                invalidations: 0,
            })
            .unwrap();
        }
        let journal = JournalReader::read_file(&path).expect("structurally valid");
        assert!(!journal.ok(), "dropped writer must mark the run failed");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn validator_rejects_structural_violations() {
        let text = sample_journal();
        let lines: Vec<&str> = text.lines().collect();

        // Sequence gap.
        let mut gap = lines.clone();
        gap.remove(2);
        let err = validate_journal(&(gap.join("\n") + "\n")).unwrap_err();
        assert!(err.contains("sequence gap"), "{err}");

        // Run-id mismatch.
        let swapped = text.replacen(
            &seeded_run_id("headline", "deadbeef", 42),
            "0000000000000000",
            1,
        );
        assert!(validate_journal(&swapped).unwrap_err().contains("run id"));

        // Wrong version.
        let bumped = text.replace("\"v\":1", "\"v\":2");
        assert!(validate_journal(&bumped)
            .unwrap_err()
            .contains("schema version"));

        // Unbalanced stage.
        let mut w = JournalWriter::in_memory("t", "m", 0);
        w.event(JournalEvent::StageStart { stage: "a".into() })
            .unwrap();
        w.event(JournalEvent::StageEnd {
            stage: "b".into(),
            wall_ms: 1.0,
        })
        .unwrap();
        let err = validate_journal(&w.finalize_to_string().unwrap()).unwrap_err();
        assert!(err.contains("does not match"), "{err}");

        // Garbage line.
        assert!(validate_journal("not json\n").is_err());
    }

    #[test]
    fn callers_cannot_forge_framing_events() {
        let mut w = JournalWriter::in_memory("t", "m", 0);
        assert!(w
            .event(JournalEvent::RunEnd {
                ok: true,
                events: 0
            })
            .is_err());
        assert!(w
            .event(JournalEvent::RunStart {
                tool: "x".into(),
                manifest_hash: "y".into(),
                seed: 0
            })
            .is_err());
        w.finalize_to_string().unwrap();
    }

    #[test]
    fn report_is_deterministic_and_covers_all_sections() {
        let text = sample_journal();
        let journal = JournalReader::read_str(&text).unwrap();
        let a = render_report(&journal);
        let b = render_report(&journal);
        assert_eq!(a, b, "report must be byte-deterministic");
        for needle in [
            "tool=headline",
            "manifest deadbeef",
            "status ok",
            "stages",
            "measure",
            "shards",
            "slowest kernels",
            "polybench/gemm/f32/8192",
            "cache  3 hits, 13 misses",
            "bench records",
            "static_at_5",
        ] {
            assert!(a.contains(needle), "report missing `{needle}`:\n{a}");
        }
    }
}

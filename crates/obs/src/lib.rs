//! # pulp-obs — lightweight pipeline telemetry
//!
//! Span/counter recording for the sim → energy → ML pipeline, with zero
//! dependencies beyond the workspace `serde` stack and no global state:
//! whoever wants telemetry owns a [`Recorder`] and passes it down.
//!
//! Three layers:
//!
//! * [`Recorder`] — collects nested [`SpanRecord`]s, counter series and
//!   instant events against either a wall clock (µs) or a caller-driven
//!   manual clock (deterministic; the simulator bridge feeds it cycles).
//! * [`Summary`] — `Display` table of span durations and counter values.
//! * [`chrome_trace`] — Chrome trace-event JSON (loadable in
//!   `chrome://tracing` / Perfetto), with [`validate_chrome_trace`]
//!   checking nesting and timestamp monotonicity structurally.
//!
//! # Examples
//!
//! ```
//! use pulp_obs::{chrome_trace, validate_chrome_trace, Recorder};
//!
//! let mut rec = Recorder::manual();
//! let run = rec.start("run");
//! rec.set_time(3);
//! rec.time("train", |r| r.counter("folds", 10.0));
//! rec.set_time(10);
//! rec.end(run);
//!
//! let json = chrome_trace(&rec, "example");
//! validate_chrome_trace(&json).unwrap();
//! assert_eq!(rec.spans()[0].duration(), 10);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chrome;
pub mod flight;
pub mod journal;
pub mod log;
pub mod metrics;
pub mod recorder;

pub use chrome::{chrome_trace, chrome_trace_value, validate_chrome_trace};
pub use flight::{
    chrome_value_of_traces, summary_value_of_traces, FlightRecorder, RequestTrace, TraceContext,
    TraceIdGen,
};
pub use journal::{
    render_journal, render_report, seeded_run_id, validate_journal, Journal, JournalEvent,
    JournalReader, JournalWriter, JOURNAL_SCHEMA_VERSION,
};
pub use log::{LogFormat, Logger};
pub use metrics::{validate_exposition, MetricsRegistry, WindowConfig};
pub use recorder::{CounterSample, EventRecord, Recorder, SpanId, SpanRecord, Summary};

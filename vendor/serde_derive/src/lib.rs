//! `#[derive(Serialize, Deserialize)]` for the vendored serde stub.
//!
//! Implemented directly on `proc_macro::TokenStream` (the build environment
//! has no `syn`/`quote`), covering the item shapes this workspace uses:
//! non-generic structs with named fields, tuple/newtype structs, and enums
//! whose variants are unit, tuple or struct-like. Enums use serde's
//! externally-tagged representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
enum Fields {
    Named(Vec<FieldDef>),
    Unnamed(usize),
    Unit,
}

/// A named field plus the subset of `#[serde(...)]` options the stub
/// understands (`default`: fall back to `Default::default()` when the key
/// is absent during deserialization).
#[derive(Debug)]
struct FieldDef {
    name: String,
    default: bool,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

/// Derives the stub `serde::Serialize` (value-model conversion).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => ser_struct(name, fields),
        Item::Enum { name, variants } => ser_enum(name, variants),
    };
    code.parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derives the stub `serde::Deserialize` (value-model conversion).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => de_struct(name, fields),
        Item::Enum { name, variants } => de_enum(name, variants),
    };
    code.parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive stub does not support generic type `{name}`");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Unnamed(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: unexpected enum body {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Parses `field: Type, ...` returning field definitions. Commas inside
/// angle brackets (`HashMap<K, V>`) are not separators; bracketed groups
/// arrive as single tokens and need no special care. A `#[serde(default)]`
/// attribute on a field is recorded; other attributes are skipped.
fn parse_named_fields(stream: TokenStream) -> Vec<FieldDef> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name, noting a
        // `#[serde(default)]` when present.
        let mut default = false;
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.next() {
                        default |= attr_is_serde_default(g.stream());
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tok) = tokens.next() else { break };
        let TokenTree::Ident(field) = tok else {
            panic!("serde_derive: expected field name, got {tok:?}");
        };
        fields.push(FieldDef {
            name: field.to_string(),
            default,
        });
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        for tok in tokens.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Returns `true` for the content of a `#[serde(default)]` attribute
/// (i.e. `serde` followed by a parenthesised list containing `default`).
fn attr_is_serde_default(stream: TokenStream) -> bool {
    let mut tokens = stream.into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g
            .stream()
            .into_iter()
            .any(|t| matches!(t, TokenTree::Ident(id) if id.to_string() == "default")),
        _ => false,
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut saw_any = false;
    for tok in stream {
        saw_any = true;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => {}
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes before the variant.
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        let Some(tok) = tokens.next() else { break };
        let TokenTree::Ident(name) = tok else {
            panic!("serde_derive: expected variant name, got {tok:?}");
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                tokens.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Unnamed(count_tuple_fields(g.stream()));
                tokens.next();
                f
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant and the trailing comma.
        let mut depth = 0i32;
        while let Some(tok) = tokens.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    tokens.next();
                    break;
                }
                _ => {}
            }
            tokens.next();
        }
        variants.push(Variant {
            name: name.to_string(),
            fields,
        });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn ser_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))",
                        f = f.name
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Fields::Unnamed(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Unnamed(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// Deserialization initializer for one named field read from the map
/// expression `src`. `#[serde(default)]` fields fall back to
/// `Default::default()` when the key is absent.
fn named_field_init(f: &FieldDef, src: &str) -> String {
    let name = &f.name;
    if f.default {
        format!(
            "{name}: match {src}.field(\"{name}\") {{\n\
             ::std::result::Result::Ok(x) => ::serde::Deserialize::from_value(x)?,\n\
             ::std::result::Result::Err(_) => ::std::default::Default::default(),\n\
             }}"
        )
    } else {
        format!("{name}: ::serde::Deserialize::from_value({src}.field(\"{name}\")?)?")
    }
}

fn de_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let inits: Vec<String> = names.iter().map(|f| named_field_init(f, "v")).collect();
            format!("::std::result::Result::Ok(Self {{ {} }})", inits.join(", "))
        }
        Fields::Unnamed(1) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(v)?))".to_string()
        }
        Fields::Unnamed(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                .collect();
            format!(
                "let seq = v.as_seq()?;\n\
                 if seq.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::DeError(::std::format!(\n\
                 \"expected {n} elements, got {{}}\", seq.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok(Self({}))",
                items.join(", ")
            )
        }
        Fields::Unit => "::std::result::Result::Ok(Self)".to_string(),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}

fn ser_enum(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.fields {
                Fields::Unit => format!(
                    "{name}::{vn} => \
                     ::serde::Value::Str(::std::string::String::from(\"{vn}\"))"
                ),
                Fields::Unnamed(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                    let inner = if *n == 1 {
                        "::serde::Serialize::to_value(x0)".to_string()
                    } else {
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                    };
                    format!(
                        "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![\
                         (::std::string::String::from(\"{vn}\"), {inner})])",
                        binds.join(", ")
                    )
                }
                Fields::Named(fields) => {
                    let binds = fields
                        .iter()
                        .map(|f| f.name.clone())
                        .collect::<Vec<_>>()
                        .join(", ");
                    let entries: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f}))",
                                f = f.name
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![\
                         (::std::string::String::from(\"{vn}\"), \
                         ::serde::Value::Map(::std::vec![{}]))])",
                        entries.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         match self {{ {} }}\n\
         }}\n\
         }}",
        arms.join(",\n")
    )
}

fn de_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| {
            format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn})",
                vn = v.name
            )
        })
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter(|v| !matches!(v.fields, Fields::Unit))
        .map(|v| {
            let vn = &v.name;
            match &v.fields {
                Fields::Unit => unreachable!(),
                Fields::Unnamed(1) => format!(
                    "\"{vn}\" => ::std::result::Result::Ok(\
                     {name}::{vn}(::serde::Deserialize::from_value(inner)?))"
                ),
                Fields::Unnamed(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                        .collect();
                    format!(
                        "\"{vn}\" => {{\n\
                         let seq = inner.as_seq()?;\n\
                         if seq.len() != {n} {{\n\
                         return ::std::result::Result::Err(::serde::DeError(\
                         ::std::format!(\"variant {vn}: expected {n} values, got {{}}\", \
                         seq.len())));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}::{vn}({}))\n\
                         }}",
                        items.join(", ")
                    )
                }
                Fields::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| named_field_init(f, "inner"))
                        .collect();
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok(\
                         {name}::{vn} {{ {} }})",
                        inits.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n\
         match v {{\n\
         ::serde::Value::Str(s) => match s.as_str() {{\n\
         {units}\n\
         other => ::std::result::Result::Err(::serde::DeError(\
         ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
         }},\n\
         ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
         let (tag, inner) = &entries[0];\n\
         let _ = inner;\n\
         match tag.as_str() {{\n\
         {tagged}\n\
         other => ::std::result::Result::Err(::serde::DeError(\
         ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
         }}\n\
         }},\n\
         other => ::std::result::Result::Err(::serde::DeError(\
         ::std::format!(\"cannot deserialize {name} from {{other:?}}\"))),\n\
         }}\n\
         }}\n\
         }}",
        units = if unit_arms.is_empty() {
            String::new()
        } else {
            unit_arms.join(",\n") + ","
        },
        tagged = if tagged_arms.is_empty() {
            String::new()
        } else {
            tagged_arms.join(",\n") + ","
        },
    )
}

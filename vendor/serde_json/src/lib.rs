//! Offline stand-in for `serde_json`.
//!
//! Serialises the vendored [`serde::Value`] model to JSON text and parses
//! JSON text back into it. Only the API surface this workspace uses is
//! provided: [`to_string`], [`to_string_pretty`], [`from_str`] and the
//! [`Error`] type.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};
use std::fmt;

/// Error produced while emitting or parsing JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Self::new(e.to_string())
    }
}

/// Serialise `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialise `value` to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into a deserialisable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser::new(s);
    parser.skip_ws();
    let v = parser.parse_value()?;
    parser.skip_ws();
    if !parser.at_end() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_nan() || x.is_infinite() {
        // Real serde_json emits `null` for non-finite floats.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Keep a trailing `.0` so the value parses back as a float.
        out.push_str(&format!("{x:.1}"));
    } else {
        // Rust's shortest-round-trip formatting.
        out.push_str(&format!("{x}"));
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser (recursive descent)
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Map(entries)),
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Seq(items)),
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            // Surrogate pair: expect `\uXXXX` low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(Error::new("unpaired surrogate"));
                            }
                            let low = self.parse_hex4()?;
                            let combined =
                                0x10000 + ((cp - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                            char::from_u32(combined)
                                .ok_or_else(|| Error::new("invalid surrogate pair"))?
                        } else {
                            char::from_u32(cp).ok_or_else(|| Error::new("invalid \\u escape"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: copy the remaining continuation bytes.
                    let len = utf8_len(b);
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(Error::new("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| Error::new("truncated \\u"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in \\u"))?;
            cp = cp * 16 + digit;
        }
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            let x: f64 = text
                .parse()
                .map_err(|_| Error::new(format!("invalid float `{text}`")))?;
            Ok(Value::F64(x))
        } else if let Some(stripped) = text.strip_prefix('-') {
            if stripped.is_empty() {
                return Err(Error::new("lone `-` is not a number"));
            }
            let n: i64 = text
                .parse()
                .map_err(|_| Error::new(format!("invalid integer `{text}`")))?;
            Ok(Value::I64(n))
        } else {
            let n: u64 = text
                .parse()
                .map_err(|_| Error::new(format!("invalid integer `{text}`")))?;
            Ok(Value::U64(n))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    if first >= 0xF0 {
        4
    } else if first >= 0xE0 {
        3
    } else {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&"hi\n").unwrap(), "\"hi\\n\"");
        let x: f64 = from_str("2.0").unwrap();
        assert_eq!(x, 2.0);
        let n: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(n, u64::MAX);
    }

    #[test]
    fn round_trip_collections() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u32> = from_str(&s).unwrap();
        assert_eq!(back, v);

        let mut m = BTreeMap::new();
        m.insert("b".to_string(), 2u64);
        m.insert("a".to_string(), 1u64);
        let s = to_string(&m).unwrap();
        assert_eq!(s, "{\"a\":1,\"b\":2}");
        let back: BTreeMap<String, u64> = from_str(&s).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pretty_printer_indents() {
        let v = vec![1u32, 2];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "[\n  1,\n  2\n]");
    }

    #[test]
    fn parses_nested_and_escapes() {
        let v: Vec<Vec<String>> = from_str(r#"[["a","bA"],[]]"#).unwrap();
        assert_eq!(v, vec![vec!["a".to_string(), "bA".to_string()], vec![]]);
    }

    #[test]
    fn rejects_trailing_garbage() {
        let r: Result<u64, Error> = from_str("12 34");
        assert!(r.is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn negative_exponent_parses() {
        let x: f64 = from_str("1e-3").unwrap();
        assert!((x - 0.001).abs() < 1e-12);
    }
}

//! Offline stand-in for `rand` 0.8.
//!
//! Provides a deterministic xoshiro256++ generator behind the small API
//! surface this workspace uses: `StdRng::seed_from_u64`, `Rng::gen_range`
//! over integer and float ranges, and `SliceRandom::shuffle`.
//!
//! Stream values differ from the real `rand` crate (which is fine: callers
//! only rely on determinism for a fixed seed, not on specific sequences).

use std::ops::Range;

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core random-value trait (subset of `rand::RngCore` + `rand::Rng`).
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample uniformly from `range` (half-open).
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self, &range)
    }
}

/// Types usable with [`Rng::gen_range`].
pub trait SampleRange: Copy {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self;
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end - range.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for the small spans used here.
                let r = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start + r as $t
            }
        }
    )*};
}

impl_sample_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u64;
                let r = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (range.start as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, isize);

impl SampleRange for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        // 53 uniform bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

impl SampleRange for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: &Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        range.start + unit * (range.end - range.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into full state, as the real
            // crate's `seed_from_u64` does.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Extension trait providing in-place shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&y));
            let f = rng.gen_range(0.0..10.0f64);
            assert!((0.0..10.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should permute 32 elements");
    }
}

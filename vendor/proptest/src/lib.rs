//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: `Strategy` with `prop_map`,
//! range/tuple/collection/sample strategies, `prop::bool::ANY`, the
//! `proptest!` macro with `#![proptest_config(..)]`, and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its case number and message only), and the value stream is this crate's
//! own deterministic generator. Each test function gets a generator seeded
//! from its own name, so runs are reproducible.

pub mod test_runner {
    /// Run-time configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per test function.
        pub cases: u32,
    }

    impl Config {
        /// Build a config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Deterministic generator (SplitMix64) used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test name.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test seed.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            Self { state: h }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below: empty bound");
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value from the strategy.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// `Just`-style constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_range_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_int!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8)
        (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9)
    }
}

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Uniformly random `bool`.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The canonical instance of [`Any`].
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        /// Length specification for [`vec`]: a fixed size or a range.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec size range");
                Self {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        /// Strategy for `Vec<S::Value>` with a random length.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generate vectors of values drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo + rng.below(span) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy choosing uniformly from a fixed set of values.
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        /// Choose uniformly from `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select: no options");
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn sample(&self, rng: &mut TestRng) -> T {
                let i = rng.below(self.options.len() as u64) as usize;
                self.options[i].clone()
            }
        }
    }
}

/// Everything a `proptest!` user needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fail the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fail the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left,
                right,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Fail the current property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                left,
                right
            ));
        }
    }};
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($config) $($rest)*);
    };
    (@expand ($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $config;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(::std::stringify!($name));
                for __case in 0..__config.cases {
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|__rng: &mut $crate::test_runner::TestRng| {
                            $(
                                let $arg =
                                    $crate::strategy::Strategy::sample(&($strat), __rng);
                            )+
                            $body
                            ::std::result::Result::Ok(())
                        })(&mut __rng);
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        ::std::panic!(
                            "property `{}` failed at case {}/{}: {}",
                            ::std::stringify!($name),
                            __case + 1,
                            __config.cases,
                            __msg
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -4i32..9, f in 0.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..9).contains(&y));
            prop_assert!((0.5..2.5).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0u32..10, prop::bool::ANY).prop_map(|(n, b)| if b { n + 100 } else { n }),
        ) {
            prop_assert!(pair < 10 || (100..110).contains(&pair));
        }

        #[test]
        fn vec_lengths_respect_spec(
            v in prop::collection::vec(0usize..5, 10..20),
            w in prop::collection::vec(0u8..2, 8),
        ) {
            prop_assert!((10..20).contains(&v.len()));
            prop_assert_eq!(w.len(), 8);
        }

        #[test]
        fn select_picks_member(k in prop::sample::select(vec![2u8, 3, 5, 7])) {
            prop_assert!([2u8, 3, 5, 7].contains(&k));
        }
    }

    #[test]
    fn failures_report_case() {
        // A deliberately failing property, run manually to keep the test
        // suite green while covering the failure path.
        let mut rng = crate::test_runner::TestRng::deterministic("manual");
        let outcome: Result<(), String> = (|rng: &mut crate::test_runner::TestRng| {
            let x = crate::strategy::Strategy::sample(&(0u32..10), rng);
            prop_assert!(x >= 10, "x was {x}");
            Ok(())
        })(&mut rng);
        assert!(outcome.is_err());
    }
}

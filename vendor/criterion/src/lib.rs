//! Offline stand-in for `criterion`.
//!
//! Wall-clock timing behind the criterion API surface this workspace
//! uses: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Each benchmark is calibrated to a small fixed time budget and reports
//! mean ns/iter (plus derived throughput when one was declared). Results
//! print to stdout; there is no statistical analysis or HTML report.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark throughput declaration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `new("gemm", 8)` renders as `gemm/8`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An identifier with no parameter part.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_ns: f64,
    budget: Duration,
}

impl Bencher {
    /// Time `routine`, storing the mean time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed call to warm caches and estimate cost.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(50));

        // Pick an iteration count that roughly fills the budget.
        let iters = (self.budget.as_nanos() / probe.as_nanos()).clamp(5, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
    }
}

/// Top-level benchmark harness.
pub struct Criterion {
    budget: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Accept (and mostly ignore) cargo-bench CLI flags; a bare
        // positional argument acts as a substring filter like criterion's.
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        let budget_ms = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200u64);
        Self {
            budget: Duration::from_millis(budget_ms),
            filter,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, None, |b| f(b));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(
        &mut self,
        label: &str,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            mean_ns: 0.0,
            budget: self.budget,
        };
        f(&mut bencher);
        let mut line = format!("{label:<40} {:>12.0} ns/iter", bencher.mean_ns);
        if let Some(t) = throughput {
            let per_sec = |n: u64| n as f64 / (bencher.mean_ns * 1e-9);
            match t {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  {:>12.0} elem/s", per_sec(n)));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  {:>12.2} MiB/s", per_sec(n) / (1024.0 * 1024.0)));
                }
            }
        }
        println!("{line}");
    }
}

/// A named collection of benchmarks sharing throughput declarations.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare throughput for subsequent benchmarks in the group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        let throughput = self.throughput;
        self.criterion.run(&label, throughput, |b| f(b));
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        let throughput = self.throughput;
        self.criterion.run(&label, throughput, |b| f(b, input));
        self
    }

    /// Mark the group complete.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emit a `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
            filter: None,
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(3u64).wrapping_mul(7));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
            filter: None,
        };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(128));
        group.bench_with_input(BenchmarkId::new("mul", 2), &2u64, |b, &k| {
            b.iter(|| black_box(k).wrapping_mul(k))
        });
        group.finish();
    }

    #[test]
    fn ids_render_with_parameter() {
        assert_eq!(BenchmarkId::new("gemm", 8).id, "gemm/8");
    }
}

//! Offline stand-in for the `serde` crate.
//!
//! The real `serde` cannot be fetched in this build environment, so this
//! crate provides the subset of its API the workspace uses, built around a
//! simplified self-describing [`Value`] data model instead of serde's
//! visitor machinery. `#[derive(Serialize, Deserialize)]` is provided by
//! the sibling `serde_derive` stub and generates `to_value`/`from_value`
//! implementations with serde's externally-tagged enum representation, so
//! JSON produced through `serde_json` matches what real serde would emit
//! for the types in this workspace.
//!
//! Determinism: struct fields serialise in declaration order and map-like
//! collections (`HashMap`, `BTreeMap`) are emitted with sorted keys, so
//! every dump is byte-stable across runs.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialised value: the intermediate representation every
/// `Serialize`/`Deserialize` implementation converts through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also `Option::None`).
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (JSON array).
    Seq(Vec<Value>),
    /// Key-ordered map (JSON object). Keys keep insertion order; derive
    /// emits declaration order and collection impls sort.
    Map(Vec<(String, Value)>),
}

/// Error raised while converting a [`Value`] back into a typed value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Creates an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        Self(m.to_string())
    }
}

impl Value {
    /// Looks up a struct field in a map value.
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError(format!("missing field `{name}`"))),
            other => Err(DeError(format!(
                "expected map for field `{name}`, got {other:?}"
            ))),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, DeError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }

    /// The value as an unsigned integer.
    pub fn as_u64(&self) -> Result<u64, DeError> {
        match self {
            Value::U64(n) => Ok(*n),
            Value::I64(n) if *n >= 0 => Ok(*n as u64),
            other => Err(DeError(format!("expected unsigned integer, got {other:?}"))),
        }
    }

    /// The value as a signed integer.
    pub fn as_i64(&self) -> Result<i64, DeError> {
        match self {
            Value::I64(n) => Ok(*n),
            Value::U64(n) if *n <= i64::MAX as u64 => Ok(*n as i64),
            other => Err(DeError(format!("expected integer, got {other:?}"))),
        }
    }

    /// The value as a float (integers coerce).
    pub fn as_f64(&self) -> Result<f64, DeError> {
        match self {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError(format!("expected number, got {other:?}"))),
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Result<bool, DeError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }

    /// The value as a sequence.
    pub fn as_seq(&self) -> Result<&[Value], DeError> {
        match self {
            Value::Seq(s) => Ok(s),
            other => Err(DeError(format!("expected sequence, got {other:?}"))),
        }
    }

    /// The value as a map.
    pub fn as_map(&self) -> Result<&[(String, Value)], DeError> {
        match self {
            Value::Map(m) => Ok(m),
            other => Err(DeError(format!("expected map, got {other:?}"))),
        }
    }
}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a serialised value tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a serialised value tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when the value shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Marker alias mirroring serde's `DeserializeOwned`.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64()?;
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64()?;
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_string)
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str()?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError(format!("expected single char, got {s:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = v
            .as_seq()?
            .iter()
            .map(T::from_value)
            .collect::<Result<_, _>>()?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let seq = v.as_seq()?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(DeError(format!(
                        "expected tuple of {expected}, got {}",
                        seq.len()
                    )));
                }
                Ok(($($t::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: fmt::Display + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut out: Vec<(String, Value)> = entries
        .map(|(k, v)| (k.to_string(), v.to_value()))
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Value::Map(out)
}

impl<K: fmt::Display, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

/// Module path compatibility: `serde::de::Error`-style helpers.
pub mod de {
    pub use crate::{DeError, Deserialize, DeserializeOwned};
}

/// Module path compatibility for `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(&Value::U64(3)), Ok(Some(3)));
    }

    #[test]
    fn arrays_check_length() {
        let v = [1.0f64, 2.0].to_value();
        assert_eq!(<[f64; 2]>::from_value(&v), Ok([1.0, 2.0]));
        assert!(<[f64; 3]>::from_value(&v).is_err());
    }

    #[test]
    fn hashmap_serialises_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 1u32);
        m.insert("a".to_string(), 2u32);
        let Value::Map(entries) = m.to_value() else {
            panic!("expected map")
        };
        assert_eq!(entries[0].0, "a");
        assert_eq!(entries[1].0, "b");
    }
}
